(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   section (the rows/series the paper reports, with the paper's values
   quoted inline).

   Part 2 runs one Bechamel microbenchmark per experiment so the
   extraction-vs-simulation cost split of the paper's section-6
   runtime note can be compared on this machine. *)

module E = Snoise.Experiments
module R = Snoise.Report
module Flow = Snoise.Flow

let fmt = Format.std_formatter

let banner title =
  Format.fprintf fmt "@.%s@.%s@.%s@." (String.make 72 '=') title
    (String.make 72 '=')

(* ------------------------------------------------------------------ *)
(* Part 1: reproduce the evaluation section *)

let reproduce_all () =
  banner "Part 1 - paper evaluation reproduced";
  R.fig3 fmt (E.fig3 ());
  R.sec3 fmt (E.sec3_numbers ());
  R.fig7 fmt (E.fig7 ());
  R.fig8 fmt (E.fig8 ());
  R.fig9 fmt (E.fig9 ());
  R.fig10 fmt (E.fig10 ());
  R.vco_card fmt (E.vco_card ());
  R.aggressor fmt (E.aggressor_comb ());
  R.runtime fmt (E.runtime ());
  Format.pp_print_flush fmt ()

(* grid-resolution ablation: the DESIGN.md convergence study *)
let ablation_grid () =
  banner "Ablation - substrate grid resolution";
  Format.fprintf fmt "%10s %14s %16s@." "grid" "cells" "divider 1/x";
  List.iter
    (fun (nx, z) ->
      let options =
        { Flow.default_options with
          Flow.grid = { Sn_substrate.Grid.nx; ny = nx; z_per_layer = Some z } }
      in
      let flow = Flow.build_nmos ~options Sn_testchip.Nmos_structure.default in
      let cells =
        match Sn_substrate.Extractor.last_stats () with
        | Some s -> s.Sn_substrate.Extractor.grid_cells
        | None -> 0
      in
      Format.fprintf fmt "%10s %14d %16.0f@."
        (Printf.sprintf "%dx%d" nx nx)
        cells
        (1.0 /. Flow.nmos_divider flow))
    [ (32, [ 1; 3; 2; 1 ]); (48, [ 1; 4; 3; 2 ]); (64, [ 1; 5; 3; 2 ]);
      (80, [ 1; 5; 3; 2 ]) ];
  Format.fprintf fmt
    "(the default 48x48 baseline, with edge snapping, is converged to within a few percent)@.";
  Format.pp_print_flush fmt ()

(* interconnect-resistance ablation: the headline claim *)
let ablation_interconnect () =
  banner "Ablation - classical flow (interconnect R ignored)";
  let with_r = E.fig3 () in
  Format.fprintf fmt
    "divider with extracted wire R : 1/%.0f@." (1.0 /. with_r.E.divider);
  Format.fprintf fmt
    "divider with ideal wires      : 1/%.0f@." (1.0 /. with_r.E.divider_no_r);
  Format.fprintf fmt
    "-> ignoring the interconnect underestimates coupling by %.1f dB@."
    (20.0 *. log10 (with_r.E.divider /. with_r.E.divider_no_r));
  Format.pp_print_flush fmt ()

(* backside metallization ablation: the strongest countermeasure the
   substrate extractor can evaluate *)
let ablation_backplane () =
  banner "Ablation - backside metallization";
  let module G = Sn_geometry in
  let module Port = Sn_substrate.Port in
  let module Mac = Sn_substrate.Macromodel in
  let die = G.Rect.make 0.0 0.0 100.0 100.0 in
  let ports =
    [ Port.v ~name:"inj" ~kind:Port.Resistive
        [ G.Rect.make 5.0 45.0 15.0 55.0 ];
      Port.v ~name:"vic" ~kind:Port.Probe
        [ G.Rect.make 80.0 45.0 90.0 55.0 ];
      Port.v ~name:"tap" ~kind:Port.Resistive
        [ G.Rect.make 45.0 5.0 55.0 15.0 ] ]
  in
  let cfg =
    { Sn_substrate.Grid.nx = 32; ny = 32; z_per_layer = Some [ 1; 3; 2; 2 ] }
  in
  let run ~backplane ~grounded =
    let m =
      Sn_substrate.Extractor.extract ~config:cfg
        ~grounded_backplane:backplane ~tech:Sn_tech.Tech.imec018 ~die ports
    in
    20.0 *. log10 (Mac.divider m ~inject:"inj" ~sense:"vic" ~grounded)
  in
  let open_back = run ~backplane:false ~grounded:[ "tap" ] in
  let plated = run ~backplane:true ~grounded:[ "tap"; "backplane" ] in
  Format.fprintf fmt "victim coupling, open backside    : %6.1f dB@." open_back;
  Format.fprintf fmt "victim coupling, grounded backside: %6.1f dB@." plated;
  Format.fprintf fmt "-> backside metallization buys %.1f dB here@."
    (open_back -. plated);
  Format.pp_print_flush fmt ()

(* process corners: the sign-off spread *)
let ablation_corners () =
  banner "Ablation - process corners (VCO spur at fc + 10 MHz)";
  let results = Snoise.Corners.vco_spread () in
  List.iter
    (fun (r : Snoise.Corners.vco_corner_result) ->
      Format.fprintf fmt "%-12s %8.1f dBm@."
        r.Snoise.Corners.corner.Snoise.Corners.name
        r.Snoise.Corners.spur_at_10mhz_dbm)
    results;
  Format.fprintf fmt "-> spread %.1f dB across corners@."
    (Snoise.Corners.spread_db results);
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* Part 3: domain-parallel sweep scaling (BENCH_2.json)

   The workload is the fig8 point evaluation — spur model plus the
   behavioral "measurement" leg (64k-sample synthesis + windowed DFT
   readback) — over a 16-point frequency sweep, repeated at pool
   widths 1/2/4/8.  Width 1 is the exact sequential path, so the
   speedup column is directly parallel-vs-sequential. *)

let sweep_scaling () =
  banner "Part 3 - domain-parallel sweep scaling";
  let module Pool = Sn_engine.Pool in
  let flow = Flow.build_vco Sn_testchip.Vco_chip.default ~vtune:0.0 in
  let f_noise = Sn_numerics.Sweep.logspace 1.0e6 15.0e6 16 in
  let h = Flow.vco_transfers flow ~f_noise in
  let osc = Flow.vco_oscillator flow in
  let point fn =
    let spur = Flow.vco_spur flow ~h ~p_noise_dbm:(-5.0) ~f_noise:fn in
    let beta, m_am =
      Sn_rf.Impact.total_modulation osc ~h:(h fn) ~a_noise:0.178 ~f_noise:fn
    in
    let samples =
      Sn_rf.Behavioral.synthesize ~carrier_freq:64.0e6
        ~amplitude:osc.Sn_rf.Impact.amplitude
        ~tones:[ { Sn_rf.Behavioral.f_noise = fn; beta; m_am } ]
        ~fs:320.0e6 ~n:65536
    in
    let upper =
      Sn_rf.Behavioral.measured_sideband_dbm samples ~fs:320.0e6
        ~carrier_freq:64.0e6 ~f_noise:fn `Upper
    in
    (spur.Sn_rf.Impact.upper_dbm, upper)
  in
  let points = Array.to_list f_noise in
  let runs = 3 in
  let time_width jobs =
    let pool = Pool.create ~jobs () in
    ignore (Pool.map_list pool point points) (* warm-up *);
    Pool.reset_stats pool;
    let t0 = Unix.gettimeofday () in
    let last = ref [] in
    for _ = 1 to runs do
      last := Pool.map_list pool point points
    done;
    let wall = (Unix.gettimeofday () -. t0) /. float_of_int runs in
    let stats = Pool.stats pool in
    Pool.shutdown pool;
    (jobs, wall, stats, !last)
  in
  let widths = [ 1; 2; 4; 8 ] in
  let curves = List.map time_width widths in
  let seq_wall, seq_result =
    match curves with
    | (1, w, _, r) :: _ -> (w, r)
    | _ -> assert false
  in
  Format.fprintf fmt "%6s %12s %10s %14s %10s@." "jobs" "wall/sweep"
    "speedup" "cpu (3 runs)" "imbalance";
  List.iter
    (fun (jobs, wall, stats, result) ->
      (* parallel sweeps must be bit-identical to the sequential path *)
      assert (result = seq_result);
      Format.fprintf fmt "%6d %9.1f ms %9.2fx %11.1f ms %10.2f@." jobs
        (1.0e3 *. wall) (seq_wall /. wall)
        (1.0e3 *. Pool.cpu_seconds stats)
        (Pool.imbalance stats))
    curves;
  Format.fprintf fmt
    "(recommended domain count here: %d; parallel results asserted \
     bit-identical to jobs=1)@."
    (Domain.recommended_domain_count ());
  let oc = open_out "BENCH_2.json" in
  Printf.fprintf oc
    "{\n  \"sweep_scaling\": {\n    \"points\": %d,\n    \
     \"runs_per_width\": %d,\n    \"recommended_domains\": %d,\n    \
     \"curves\": [\n"
    (List.length points) runs
    (Domain.recommended_domain_count ());
  let n_curves = List.length curves in
  List.iteri
    (fun i (jobs, wall, stats, _) ->
      Printf.fprintf oc
        "      { \"jobs\": %d, \"wall_seconds\": %.6f, \"speedup\": %.3f, \
         \"cpu_seconds\": %.6f, \"imbalance\": %.3f }%s\n"
        jobs wall (seq_wall /. wall)
        (Pool.cpu_seconds stats)
        (Pool.imbalance stats)
        (if i = n_curves - 1 then "" else ","))
    curves;
  output_string oc "    ]\n  }\n}\n";
  close_out oc;
  Format.fprintf fmt "wrote sweep-scaling curves to BENCH_2.json@.";
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* Part 4: robustness-layer overhead on the healthy path (BENCH_3.json)

   The rescue ladder threads fault-injection polls and attempt
   recording through the DC and transient hot paths.  A healthy run
   never climbs past the plain Newton rung, so the cost must stay in
   the noise.  Two probes: a long fixed-step linear transient (the
   frozen-LU fast path, where a per-step poll would show up first) and
   the full fig7 spur sweep.  Each runs with the fault hook disarmed
   and with a fault armed that can never fire — the worst case for the
   polling cost, since every factorization bumps the atomic counter. *)

let rescue_overhead () =
  banner "Part 4 - robustness-layer overhead on the healthy path";
  let module Fault = Sn_engine.Fault in
  let module C = Sn_circuit in
  let module El = C.Element in
  let rc_ladder =
    let n = 40 in
    let stages =
      List.concat
        (List.init n (fun k ->
             let a = if k = 0 then "in" else Printf.sprintf "n%d" k in
             let b = Printf.sprintf "n%d" (k + 1) in
             [ El.Resistor
                 { name = Printf.sprintf "r%d" k; n1 = a; n2 = b;
                   ohms = 100.0 };
               El.Capacitor
                 { name = Printf.sprintf "c%d" k; n1 = b; n2 = "0";
                   farads = 1e-12 } ]))
    in
    C.Netlist.create
      (El.Vsource
         { name = "v1"; np = "in"; nn = "0"; wave = C.Waveform.dc 1.0;
           ac_mag = 0.0 }
      :: stages)
  in
  let tran_workload () =
    ignore (Sn_engine.Tran.simulate ~tstop:2.0e-7 ~dt:1.0e-10 rc_ladder)
  in
  let fig7_workload () = ignore (E.fig7 ~f_noise:10.0e6 ()) in
  let time ~runs f =
    f () (* warm-up *);
    let t0 = Unix.gettimeofday () in
    for _ = 1 to runs do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int runs
  in
  let probe (name, runs, f) =
    Fault.disarm ();
    let off = time ~runs f in
    (* armed but unreachable: pure polling cost *)
    Fault.arm Fault.Factor (Fault.Nth max_int);
    let on_ = time ~runs f in
    Fault.disarm ();
    let ratio = on_ /. off in
    Format.fprintf fmt "%-16s %9.1f ms disarmed %9.1f ms armed %8.3fx@."
      name (1.0e3 *. off) (1.0e3 *. on_) ratio;
    (name, runs, off, on_, ratio)
  in
  let rows =
    List.map probe
      [ ("tran-fixed-step", 5, tran_workload); ("fig7-sweep", 2, fig7_workload) ]
  in
  let oc = open_out "BENCH_3.json" in
  output_string oc "{\n  \"rescue_overhead\": {\n    \"workloads\": [\n";
  let n_rows = List.length rows in
  List.iteri
    (fun i (name, runs, off, on_, ratio) ->
      Printf.fprintf oc
        "      { \"name\": \"%s\", \"runs\": %d, \"disarmed_seconds\": \
         %.6f, \"armed_idle_seconds\": %.6f, \"overhead_ratio\": %.3f }%s\n"
        name runs off on_ ratio
        (if i = n_rows - 1 then "" else ","))
    rows;
  output_string oc "    ]\n  }\n}\n";
  close_out oc;
  Format.fprintf fmt "wrote rescue-overhead probes to BENCH_3.json@.";
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* Part 5: the sparse complex frequency-domain engine (BENCH_4.json)

   An RC mesh of 18 x 18 nodes (326 unknowns, every node loaded by a
   capacitor, driven from one corner through 50 ohm) swept over 120
   log-spaced frequency points.  The sparse engine (one compiled
   G + jwB plan, one symbolic factorization, slot-replay refills) is
   compared against the dense reference formulation (full matrix
   assembly + dense complex LU per point), timed on a subset of points
   and extrapolated.  The same mesh drives the adjoint noise
   comparison: transpose solve on the shared sparse factorization
   versus the materialized-transpose dense solve the noise engine used
   to perform.  Agreement (<= 1e-9 relative) and jobs=1 vs jobs=4
   byte-identity are asserted, so "bench part5" doubles as a CI smoke
   gate. *)

let frequency_domain () =
  banner "Part 5 - sparse frequency-domain engine (AC sweep + adjoint noise)";
  let module C = Sn_circuit in
  let module El = C.Element in
  let module Eng = Sn_engine in
  let module N = Sn_numerics in
  let n_side = 18 in
  let name i j = Printf.sprintf "n%d_%d" i j in
  let elems = ref [] in
  let emit e = elems := e :: !elems in
  for i = 0 to n_side - 1 do
    for j = 0 to n_side - 1 do
      let here = name i j in
      if i < n_side - 1 then
        emit
          (El.Resistor
             { name = Printf.sprintf "rr%d_%d" i j; n1 = here;
               n2 = name (i + 1) j; ohms = 100.0 });
      if j < n_side - 1 then
        emit
          (El.Resistor
             { name = Printf.sprintf "rd%d_%d" i j; n1 = here;
               n2 = name i (j + 1); ohms = 130.0 });
      emit
        (El.Capacitor
           { name = Printf.sprintf "cg%d_%d" i j; n1 = here; n2 = "0";
             farads = 0.5e-12 })
    done
  done;
  emit
    (El.Vsource
       { name = "vin"; np = "emf"; nn = "0"; wave = C.Waveform.dc 0.0;
         ac_mag = 1.0 });
  emit (El.Resistor { name = "rsrc"; n1 = "emf"; n2 = name 0 0; ohms = 50.0 });
  let nl = C.Netlist.create !elems in
  let mna = Eng.Mna.build nl in
  let plan = Eng.Stamp_plan.build mna in
  let dc = Eng.Dc.solve_mna mna in
  let out = name (n_side - 1) (n_side - 1) in
  let out_slot = Eng.Mna.node_slot mna out in
  let dim = Eng.Mna.dim mna in
  let n_pts = 120 in
  let freqs = N.Sweep.logspace 1.0e6 1.0e9 n_pts in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* sparse AC sweep, sequential *)
  Eng.Pool.set_default_jobs 1;
  ignore (Eng.Ac.sweep ~dc nl ~freqs:[| 1.0e6 |] ~nodes:[ out ]) (* warm-up *);
  let seq, t_sparse =
    time (fun () -> Eng.Ac.sweep ~dc nl ~freqs ~nodes:[ out ])
  in
  (* dense reference on a subset of points, extrapolated *)
  let subset = [| 0; n_pts / 3; 2 * n_pts / 3; n_pts - 1 |] in
  let n_sub = float_of_int (Array.length subset) in
  let dense_at k =
    let omega = N.Units.two_pi *. freqs.(k) in
    let a, rhs = Eng.Ac.system_of_plan plan dc ~omega in
    N.Lu.Cplx.solve_matrix a rhs
  in
  let max_ac_err = ref 0.0 in
  let (), t_dense_sub =
    time (fun () ->
        Array.iter
          (fun k ->
            let x = dense_at k in
            let v_ref = x.(out_slot) in
            let v = List.assoc out seq.(k).Eng.Ac.values in
            let err =
              Complex.norm (Complex.sub v v_ref)
              /. Float.max (Complex.norm v_ref) 1e-300
            in
            max_ac_err := Float.max !max_ac_err err)
          subset)
  in
  let t_dense_est = t_dense_sub /. n_sub *. float_of_int n_pts in
  if !max_ac_err > 1e-9 then
    failwith "bench part5: sparse AC disagrees with the dense reference";
  (* parallel byte-identity *)
  Eng.Pool.set_default_jobs 4;
  let par = Eng.Ac.sweep ~dc nl ~freqs ~nodes:[ out ] in
  Eng.Pool.set_default_jobs 1;
  if not (seq = par) then
    failwith "bench part5: jobs=4 sweep differs from jobs=1";
  (* adjoint noise on the shared sparse factorization *)
  let noise_pts, t_noise =
    time (fun () -> Eng.Noise.analyze ~dc nl ~output:out ~freqs)
  in
  let noise_arr = Array.of_list noise_pts in
  (* dense adjoint baseline: materialized transpose + dense complex LU
     per point, exactly what the noise engine used to do *)
  let transpose m =
    let n = Array.length m in
    Array.init n (fun i -> Array.init n (fun j -> m.(j).(i)))
  in
  let e_out =
    Array.init dim (fun i ->
        if i = out_slot then Complex.one else Complex.zero)
  in
  let four_kt = 4.0 *. 1.380649e-23 *. 300.0 in
  let slot = Eng.Mna.node_slot mna in
  let dense_noise_at k =
    let omega = N.Units.two_pi *. freqs.(k) in
    let a, _ = Eng.Ac.system_of_plan plan dc ~omega in
    let y = N.Lu.Cplx.solve_matrix (transpose a) e_out in
    let g s = if s < 0 then Complex.zero else y.(s) in
    List.fold_left
      (fun acc e ->
        match e with
        | El.Resistor { n1; n2; ohms; _ } ->
          let h = Complex.sub (g (slot n1)) (g (slot n2)) in
          acc +. (Complex.norm2 h *. (four_kt /. ohms))
        | _ -> acc)
      0.0 (C.Netlist.elements nl)
  in
  let max_noise_err = ref 0.0 in
  let (), t_noise_dense_sub =
    time (fun () ->
        Array.iter
          (fun k ->
            let ref_psd = dense_noise_at k in
            let err =
              Float.abs (noise_arr.(k).Eng.Noise.total_psd -. ref_psd)
              /. Float.max ref_psd 1e-300
            in
            max_noise_err := Float.max !max_noise_err err)
          subset)
  in
  let t_noise_dense_est = t_noise_dense_sub /. n_sub *. float_of_int n_pts in
  if !max_noise_err > 1e-9 then
    failwith "bench part5: adjoint noise disagrees with the dense baseline";
  Eng.Pool.set_default_jobs (Eng.Pool.env_jobs ());
  let ac_speedup = t_dense_est /. t_sparse in
  let noise_speedup = t_noise_dense_est /. t_noise in
  Format.fprintf fmt
    "%d unknowns, %d points@.ac sweep: sparse %.3f s, dense est %.1f s \
     (%.1fx), max rel err %.2e@.noise adjoint: sparse %.3f s, dense est \
     %.1f s (%.1fx), max rel err %.2e@."
    dim n_pts t_sparse t_dense_est ac_speedup !max_ac_err t_noise
    t_noise_dense_est noise_speedup !max_noise_err;
  let oc = open_out "BENCH_4.json" in
  Printf.fprintf oc
    "{\n\
    \  \"frequency_domain\": {\n\
    \    \"unknowns\": %d,\n\
    \    \"freq_points\": %d,\n\
    \    \"ac_sweep\": {\n\
    \      \"sparse_seconds\": %.6f,\n\
    \      \"dense_seconds_est\": %.6f,\n\
    \      \"speedup\": %.2f,\n\
    \      \"max_rel_err\": %.3e,\n\
    \      \"parallel_identical\": true\n\
    \    },\n\
    \    \"noise_adjoint\": {\n\
    \      \"sparse_seconds\": %.6f,\n\
    \      \"dense_seconds_est\": %.6f,\n\
    \      \"speedup\": %.2f,\n\
    \      \"max_rel_err\": %.3e\n\
    \    }\n\
    \  }\n\
     }\n"
    dim n_pts t_sparse t_dense_est ac_speedup !max_ac_err t_noise
    t_noise_dense_est noise_speedup !max_noise_err;
  close_out oc;
  Format.fprintf fmt "wrote frequency-domain probes to BENCH_4.json@.";
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* Part 6: substrate extraction at scale (BENCH_5.json)

   Wall time of the macromodel extraction versus lateral grid size,
   48^2 up to 512^2 surface cells (over a million FDM nodes at the
   top), multigrid-preconditioned CG against the direct star-mesh
   elimination.  Direct is measured only at the small sizes and
   power-law extrapolated past them (the same measured-subset idiom as
   part 5); the MG-CG column reports per-size CG iteration counts so
   the near-flat growth that makes the scaling possible is visible in
   the JSON.  A 2x2 tiled extraction runs cold then warm against a
   throwaway cache directory (warm must hit every tile and run zero
   CG iterations), jobs=1 vs jobs=4 byte-identity and small-grid
   agreement with the direct oracle are asserted, so "bench part6"
   doubles as a CI smoke gate.  "bench part6 small" trims the size
   ladder for CI. *)

let extraction_scaling () =
  banner "Part 6 - substrate extraction at scale (MG-CG, tiles, cache)";
  let module G = Sn_geometry in
  let module Sub = Sn_substrate in
  let module X = Sub.Extractor in
  let module Port = Sub.Port in
  let module Mac = Sub.Macromodel in
  let module N = Sn_numerics in
  let module Pool = Sn_engine.Pool in
  let small = Array.exists (String.equal "small") Sys.argv in
  let die = G.Rect.make 0.0 0.0 400.0 400.0 in
  let ports =
    [ Port.v ~name:"agg" ~kind:Port.Resistive
        [ G.Rect.make 40.0 40.0 120.0 120.0 ];
      Port.v ~name:"vic" ~kind:Port.Resistive
        [ G.Rect.make 280.0 280.0 360.0 360.0 ];
      Port.v ~name:"ring" ~kind:Port.Resistive
        [ G.Rect.make 40.0 280.0 120.0 360.0 ];
      Port.v ~name:"tap" ~kind:Port.Resistive
        [ G.Rect.make 280.0 40.0 360.0 120.0 ];
      Port.v ~name:"probe" ~kind:Port.Probe
        [ G.Rect.make 180.0 180.0 220.0 220.0 ] ]
  in
  let cfg n = { Sub.Grid.nx = n; ny = n; z_per_layer = Some [ 1; 1; 1; 1 ] } in
  let sizes = if small then [| 32; 48 |] else [| 48; 96; 128; 192; 256; 512 |] in
  let direct_limit = 96 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let entries = Array.make (Array.length sizes) "" in
  let mat_bits m =
    let np = N.Mat.rows m in
    Array.init (np * np) (fun k ->
        Int64.bits_of_float (N.Mat.get m (k / np) (k mod np)))
  in
  let max_rel_err a b =
    let ea = mat_bits a and eb = mat_bits b in
    let scale =
      Array.fold_left
        (fun m x -> Float.max m (Float.abs (Int64.float_of_bits x)))
        1e-300 ea
    in
    let worst = ref 0.0 in
    Array.iteri
      (fun k x ->
        worst :=
          Float.max !worst
            (Float.abs (Int64.float_of_bits x -. Int64.float_of_bits eb.(k))
            /. scale))
      ea;
    !worst
  in
  (* direct elimination measured at the small sizes; power-law fit in
     cell count extrapolates the rest *)
  let direct_measured = ref [] in
  let accuracy_err = ref 0.0 in
  Format.fprintf fmt "%8s %10s %12s %8s %6s %14s@." "grid" "cells"
    "mgcg (s)" "cg its" "mg lvl" "direct (s)";
  Array.iteri
    (fun k n ->
      let mg, t_mg =
        time (fun () -> X.extract ~config:(cfg n) ~tech:Sn_tech.Tech.imec018 ~die ports)
      in
      let st = Option.get (X.last_stats ()) in
      let cells = st.X.grid_cells in
      let direct_s, estimated =
        if n <= direct_limit then begin
          let dm, t_d =
            time (fun () ->
                Sub.Elimination.reduce_grid ~config:(cfg n)
                  ~tech:Sn_tech.Tech.imec018 ~die ports)
          in
          accuracy_err :=
            Float.max !accuracy_err
              (max_rel_err dm.Mac.conductance mg.Mac.conductance);
          direct_measured := (float_of_int cells, t_d) :: !direct_measured;
          (t_d, false)
        end
        else begin
          (* fit t = c * cells^alpha through the measured pairs *)
          let pairs = !direct_measured in
          let alpha, c =
            match pairs with
            | (c1, t1) :: _ ->
              let cn, tn = List.nth pairs (List.length pairs - 1) in
              let alpha =
                if List.length pairs > 1 && tn > 0.0 && t1 > 0.0 then
                  Float.max 1.0 (log (t1 /. tn) /. log (c1 /. cn))
                else 1.5
              in
              (alpha, t1 /. (c1 ** alpha))
            | [] -> (1.5, 1e-6)
          in
          (c *. (float_of_int cells ** alpha), true)
        end
      in
      Format.fprintf fmt "%5dx%-2d %10d %12.3f %8d %6d %11.2f%s@." n n cells
        t_mg st.X.cg_iterations_total st.X.mg_levels direct_s
        (if estimated then " est" else "");
      entries.(k) <-
        Printf.sprintf
          "      { \"nx\": %d, \"cells\": %d, \"mgcg_seconds\": %.6f, \
           \"cg_iterations\": %d, \"mg_levels\": %d, \
           \"direct_seconds\": %.6f, \"direct_estimated\": %b }"
          n cells t_mg st.X.cg_iterations_total st.X.mg_levels direct_s
          estimated;
      if k = Array.length sizes - 1 then begin
        let speedup = direct_s /. t_mg in
        Format.fprintf fmt
          "largest grid: MG-CG %.2f s vs direct%s %.1f s (%.1fx)@." t_mg
          (if estimated then " (est)" else "")
          direct_s speedup;
        if (not small) && speedup < 10.0 then
          failwith "bench part6: < 10x speedup over direct at largest grid"
      end)
    sizes;
  Format.fprintf fmt "small-grid agreement vs direct: max rel err %.2e@."
    !accuracy_err;
  if !accuracy_err > 1e-8 then
    failwith "bench part6: MG-CG disagrees with direct elimination";
  (* tiled extraction, cold vs warm cache *)
  let n_tiled = if small then 48 else 96 in
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "snoise_bench_cache_%d" (Unix.getpid ()))
  in
  if Sys.file_exists cache_dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat cache_dir f))
      (Sys.readdir cache_dir);
  let cache = Sub.Cache.create ~dir:cache_dir in
  let run_tiled () =
    X.extract ~config:(cfg n_tiled) ~tiles:(2, 2) ~cache
      ~tech:Sn_tech.Tech.imec018 ~die ports
  in
  let cold, t_cold = time run_tiled in
  let st_cold = Option.get (X.last_stats ()) in
  let warm, t_warm = time run_tiled in
  let st_warm = Option.get (X.last_stats ()) in
  if st_cold.X.cache_hits <> 0 || st_cold.X.cache_misses <> st_cold.X.tiles
  then failwith "bench part6: cold cache counters off";
  if st_warm.X.cache_hits <> st_warm.X.tiles || st_warm.X.cache_misses <> 0
  then failwith "bench part6: warm cache missed a tile";
  if st_warm.X.cg_iterations_total <> 0 then
    failwith "bench part6: warm cache still ran CG";
  if mat_bits cold.Mac.conductance <> mat_bits warm.Mac.conductance then
    failwith "bench part6: warm cache result differs";
  Format.fprintf fmt
    "tiled %dx%d at %dx%d: cold %.3f s (%d tiles, %d interface nodes), \
     warm %.3f s (%d/%d hits, 0 CG iterations)@."
    2 2 n_tiled n_tiled t_cold st_cold.X.tiles st_cold.X.interface_nodes
    t_warm st_warm.X.cache_hits st_warm.X.tiles;
  (* worker-count determinism *)
  let n_par = if small then 48 else 96 in
  let run_par () =
    X.extract ~config:(cfg n_par) ~tiles:(2, 2) ~tech:Sn_tech.Tech.imec018
      ~die ports
  in
  Pool.set_default_jobs 1;
  let seq = run_par () in
  Pool.set_default_jobs 4;
  let par = run_par () in
  Pool.set_default_jobs (Pool.env_jobs ());
  if mat_bits seq.Mac.conductance <> mat_bits par.Mac.conductance then
    failwith "bench part6: jobs=4 extraction differs from jobs=1";
  Format.fprintf fmt "jobs=1 vs jobs=4: byte-identical@.";
  let oc = open_out "BENCH_5.json" in
  Printf.fprintf oc
    "{\n\
    \  \"extraction_scaling\": {\n\
    \    \"ports\": %d,\n\
    \    \"small_mode\": %b,\n\
    \    \"grids\": [\n%s\n\
    \    ],\n\
    \    \"accuracy_max_rel_err\": %.3e,\n\
    \    \"tiled_cache\": {\n\
    \      \"grid_nx\": %d,\n\
    \      \"tiles\": %d,\n\
    \      \"interface_nodes\": %d,\n\
    \      \"cold_seconds\": %.6f,\n\
    \      \"warm_seconds\": %.6f,\n\
    \      \"warm_hits\": %d,\n\
    \      \"warm_cg_iterations\": %d,\n\
    \      \"warm_identical\": true\n\
    \    },\n\
    \    \"parallel_identical\": true\n\
    \  }\n\
     }\n"
    (List.length ports) small
    (String.concat ",\n" (Array.to_list entries))
    !accuracy_err n_tiled st_cold.X.tiles st_cold.X.interface_nodes t_cold
    t_warm st_warm.X.cache_hits st_warm.X.cg_iterations_total;
  close_out oc;
  Format.fprintf fmt "wrote extraction scaling to BENCH_5.json@.";
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* Part 8: resident service throughput (BENCH_6.json)

   The workload [snoise serve] exists for: the same deck requested
   over and over.  Cold serves every request with the plan cache
   cleared, so each one re-parses, re-lints, re-compiles and
   re-factorizes; warm serves hit the compiled plan, the memoized DC
   bias and the cached AC factorization.  The part also re-asserts the
   batching contract outside the unit tests: a drained batch of ac
   sweeps must be byte-identical to serving the same requests one at a
   time, at pool widths 1 and 4. *)

let serving_throughput () =
  banner "Part 8 - resident service: cold vs warm requests/s (BENCH_6.json)";
  let module Sv = Sn_server.Service in
  let module Pc = Sn_server.Plan_cache in
  let module J = Sn_server.Json in
  let small = Array.exists (String.equal "small") Sys.argv in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* an RC ladder big enough that compiling the deck (parse + lint +
     MNA + stamp plan + DC bias + AC factorization) dwarfs one warm
     three-point solve *)
  let stages = if small then 80 else 160 in
  let deck =
    let b = Buffer.create 8192 in
    Buffer.add_string b "* bench service RC ladder\n";
    Buffer.add_string b "v1 in 0 dc 1 ac 1\n";
    Buffer.add_string b "rin in n1 50\n";
    for k = 1 to stages do
      let n2 = if k = stages then "out" else Printf.sprintf "n%d" (k + 1) in
      Printf.bprintf b "r%d n%d %s %d\n" k k n2 (100 + k);
      Printf.bprintf b "c%d n%d 0 1e-12\n" k k
    done;
    Buffer.add_string b "rload out 0 1k\n.end\n";
    Buffer.contents b
  in
  let ac_line ?(id = 1) freqs =
    Printf.sprintf
      {|{"id": %d, "verb": "ac", "deck": %s, "params": {"freqs": %s, "nodes": ["out"]}}|}
      id
      (J.to_string (J.Str deck))
      freqs
  in
  let member name j =
    match J.member name j with
    | Some v -> v
    | None ->
      failwith
        (Printf.sprintf "bench part7: reply lacks %S: %s" name (J.to_string j))
  in
  let handle1 svc line =
    match Sv.handle svc ~client:1 line with
    | [ r ] ->
      (match J.member "error" r with
      | Some e ->
        failwith ("bench part7: request refused: " ^ J.to_string e)
      | None -> r)
    | rs ->
      failwith
        (Printf.sprintf "bench part7: expected 1 reply, got %d"
           (List.length rs))
  in
  let line = ac_line "[1e6, 5e6, 2e7]" in
  let svc = Sv.create () in
  (* cold: clear the cache before every request *)
  let n_cold = if small then 5 else 10 in
  let (), t_cold =
    time (fun () ->
        for _ = 1 to n_cold do
          Pc.clear (Sv.cache svc);
          ignore (handle1 svc line)
        done)
  in
  let cold_rps = float_of_int n_cold /. t_cold in
  (* warm: prime once, then serve from the caches *)
  ignore (handle1 svc line);
  let n_warm = if small then 50 else 200 in
  let last = ref J.Null in
  let (), t_warm =
    time (fun () ->
        for _ = 1 to n_warm do
          last := handle1 svc line
        done)
  in
  let warm_rps = float_of_int n_warm /. t_warm in
  (match member "plan" (member "served" !last) with
  | J.Str "hit" -> ()
  | other ->
    failwith
      ("bench part7: warm request missed the plan cache: "
      ^ J.to_string other));
  let speedup = warm_rps /. cold_rps in
  Format.fprintf fmt
    "%d-stage ladder: cold %8.1f req/s (%d reqs), warm %8.1f req/s (%d reqs) \
     -> %.1fx@."
    stages cold_rps n_cold warm_rps n_warm speedup;
  if (not small) && speedup < 10.0 then
    failwith "bench part7: warm serving < 10x cold";
  (* batching contract: drained batch byte-identical to one-at-a-time *)
  let freq_sets =
    [ "[1e6, 3e6]"; "[2e6]"; "[1e6, 5e6, 9e6]"; "[3e6, 2e6]" ]
  in
  let result_str reply = J.to_string (member "result" reply) in
  let batch_identical jobs =
    Snoise.Sweep.set_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Snoise.Sweep.set_jobs 1)
      (fun () ->
        let batched = Sv.create () in
        List.iteri
          (fun i freqs ->
            match Sv.submit batched ~client:1 (ac_line ~id:i freqs) with
            | `Queued -> ()
            | _ -> failwith "bench part7: batch submit not queued")
          freq_sets;
        let batched_replies = List.map snd (Sv.drain batched) in
        let indiv = Sv.create () in
        List.iteri
          (fun i freqs ->
            let b = List.nth batched_replies i in
            (match member "batched" (member "served" b) with
            | J.Num n when int_of_float n = List.length freq_sets -> ()
            | other ->
              failwith
                ("bench part7: batch not coalesced: " ^ J.to_string other));
            let s = handle1 indiv (ac_line ~id:i freqs) in
            if not (String.equal (result_str b) (result_str s)) then
              failwith
                (Printf.sprintf
                   "bench part7: batched reply %d differs at jobs=%d" i jobs))
          freq_sets)
  in
  batch_identical 1;
  batch_identical 4;
  Format.fprintf fmt
    "batched sweep (%d requests) byte-identical to sequential at jobs 1 and 4@."
    (List.length freq_sets);
  let oc = open_out "BENCH_6.json" in
  Printf.fprintf oc
    "{\n\
    \  \"resident_service\": {\n\
    \    \"deck_stages\": %d,\n\
    \    \"small_mode\": %b,\n\
    \    \"cold_requests\": %d,\n\
    \    \"warm_requests\": %d,\n\
    \    \"cold_rps\": %.3f,\n\
    \    \"warm_rps\": %.3f,\n\
    \    \"warm_over_cold\": %.2f,\n\
    \    \"batch\": {\n\
    \      \"requests\": %d,\n\
    \      \"jobs\": [1, 4],\n\
    \      \"byte_identical\": true\n\
    \    }\n\
    \  }\n\
     }\n"
    stages small n_cold n_warm cold_rps warm_rps speedup
    (List.length freq_sets);
  close_out oc;
  Format.fprintf fmt "wrote resident-service throughput to BENCH_6.json@.";
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* Part 9: cooperative-cancellation overhead (BENCH_7.json)

   The deadline machinery polls an ambient token at iteration
   boundaries of every long-running loop.  On the serving layer's hot
   path — a warm AC sweep over a compiled plan — that poll must be
   noise: this part times the same sweep with no token installed
   (disarmed, the production default) and with an unreachable-deadline
   token armed, and fails the run when the armed/disarmed ratio
   exceeds 1.05.  A second probe arms an already-expired deadline and
   checks that the sweep actually stops, with partial progress
   recorded — the other half of the contract. *)

let cancellation_overhead () =
  banner
    "Part 9 - cooperative cancellation: check overhead on the AC hot path \
     (BENCH_7.json)";
  let module N = Sn_numerics in
  let small = Array.exists (String.equal "small") Sys.argv in
  let stages = if small then 60 else 120 in
  let deck =
    let module El = Sn_circuit.Element in
    let node k = if k = 0 then "0" else Printf.sprintf "n%d" k in
    let elements =
      El.Vsource
        { name = "vin"; np = "in"; nn = "0";
          wave = Sn_circuit.Waveform.dc 1.0; ac_mag = 1.0 }
      :: El.Resistor { name = "rin"; n1 = "in"; n2 = node 1; ohms = 50.0 }
      :: El.Resistor
           { name = "rload"; n1 = node stages; n2 = "0"; ohms = 1000.0 }
      :: List.concat
           (List.init stages (fun k ->
                let k = k + 1 in
                [ El.Resistor
                    { name = Printf.sprintf "r%d" k; n1 = node k;
                      n2 = node (k + 1); ohms = 100.0 +. float_of_int k };
                  El.Capacitor
                    { name = Printf.sprintf "c%d" k; n1 = node k; n2 = "0";
                      farads = 1.0e-12 } ]))
    in
    Sn_circuit.Netlist.create ~title:"bench cancellation ladder" elements
  in
  let compiled = Flow.compile_deck ~lint:false deck in
  let acp = Flow.compiled_ac_plan compiled in
  let freqs =
    Array.init (if small then 64 else 256) (fun i ->
        1.0e6 *. (1.0 +. float_of_int i))
  in
  let nodes = [ Printf.sprintf "n%d" stages ] in
  (* pin the symbolic factorization before timing anything *)
  ignore (Sn_engine.Ac.sweep_plan acp ~freqs:[| 1.0e6 |] ~nodes);
  let time_sweep () =
    let t0 = Unix.gettimeofday () in
    ignore (Sn_engine.Ac.sweep_plan acp ~freqs ~nodes);
    Unix.gettimeofday () -. t0
  in
  (* min-of-N: the cleanest estimator for a fixed workload under
     scheduler noise *)
  let reps = if small then 5 else 9 in
  let min_of f =
    let best = ref infinity in
    for _ = 1 to reps do
      best := Float.min !best (f ())
    done;
    !best
  in
  let disarmed = min_of time_sweep in
  let far = N.Cancel.create ~deadline:(Unix.gettimeofday () +. 3600.0) () in
  let armed = min_of (fun () -> N.Cancel.with_token far time_sweep) in
  let ratio = armed /. disarmed in
  Format.fprintf fmt
    "%d-stage ladder, %d freqs: disarmed %.3f ms, armed %.3f ms -> ratio \
     %.3f@."
    stages (Array.length freqs) (disarmed *. 1.0e3) (armed *. 1.0e3) ratio;
  if (not small) && ratio > 1.05 then
    failwith
      (Printf.sprintf "bench part8: cancellation overhead %.3f > 1.05" ratio);
  (* the deadline actually fires: an expired token stops the sweep at
     an iteration boundary with partial progress recorded *)
  let expired = N.Cancel.create ~deadline:(Unix.gettimeofday () -. 1.0) () in
  let fired, progress =
    match
      N.Cancel.with_token expired (fun () ->
          Sn_engine.Ac.sweep_plan acp ~freqs ~nodes)
    with
    | _ -> (false, 0)
    | exception N.Cancel.Cancelled tok -> (true, N.Cancel.progress tok)
  in
  if not fired then failwith "bench part8: expired deadline did not cancel";
  Format.fprintf fmt
    "expired deadline cancelled the sweep after %d iteration(s)@." progress;
  let oc = open_out "BENCH_7.json" in
  Printf.fprintf oc
    "{\n\
    \  \"cancellation\": {\n\
    \    \"deck_stages\": %d,\n\
    \    \"freq_points\": %d,\n\
    \    \"small_mode\": %b,\n\
    \    \"reps\": %d,\n\
    \    \"disarmed_ms\": %.4f,\n\
    \    \"armed_ms\": %.4f,\n\
    \    \"overhead_ratio\": %.4f,\n\
    \    \"deadline_fires\": %b,\n\
    \    \"cancelled_after_iterations\": %d\n\
    \  }\n\
     }\n"
    stages (Array.length freqs) small reps (disarmed *. 1.0e3)
    (armed *. 1.0e3) ratio fired progress;
  close_out oc;
  Format.fprintf fmt "wrote cancellation overhead to BENCH_7.json@.";
  Format.pp_print_flush fmt ()

(* Part 10: PRIMA model-order reduction on the AC hot path (BENCH_8.json)

   The universal-macromodel claim of ISSUE 9: swapping a merged
   model's passive pool (an RC mesh standing in for the coupled
   interconnect bus, plus a real extracted substrate macromodel tying
   its corners through silicon) for its rank-k PRIMA realization must
   buy at least 5x on a warm AC sweep while tracking the exact port
   transfer to 1e-4 over the band — and stay byte-identical at jobs=1
   vs jobs=4, like every other parallel surface. *)

let reduction_speedup () =
  banner
    "Part 10 - PRIMA reduction: exact vs rank-k AC sweep (BENCH_8.json)";
  let module C = Sn_circuit in
  let module El = C.Element in
  let module Eng = Sn_engine in
  let module N = Sn_numerics in
  let module R = Snoise.Reduced_model in
  let small = Array.exists (String.equal "small") Sys.argv in
  let n_side = if small then 14 else 20 in
  let name i j = Printf.sprintf "n%d_%d" i j in
  let elems = ref [] in
  let emit e = elems := e :: !elems in
  (* the coupled passive pool: an RC mesh (resistive grid, ground
     capacitance per node) *)
  for i = 0 to n_side - 1 do
    for j = 0 to n_side - 1 do
      let here = name i j in
      if i < n_side - 1 then
        emit
          (El.Resistor
             { name = Printf.sprintf "rr%d_%d" i j; n1 = here;
               n2 = name (i + 1) j; ohms = 100.0 });
      if j < n_side - 1 then
        emit
          (El.Resistor
             { name = Printf.sprintf "rd%d_%d" i j; n1 = here;
               n2 = name i (j + 1); ohms = 130.0 });
      emit
        (El.Capacitor
           { name = Printf.sprintf "cg%d_%d" i j; n1 = here; n2 = "0";
             farads = 0.1e-12 })
    done
  done;
  (* a real extracted substrate macromodel, its ports named after the
     mesh corners so the silicon couplings join the same passive pool *)
  let corner_port nm rect =
    Sn_substrate.Port.v ~name:nm ~kind:Sn_substrate.Port.Resistive [ rect ]
  in
  let sub_die = Sn_geometry.Rect.make 0.0 0.0 60.0 60.0 in
  let macro =
    Sn_substrate.Extractor.extract
      ~config:{ Sn_substrate.Grid.nx = 12; ny = 12; z_per_layer = Some [ 1; 1; 1; 1 ] }
      ~tech:Sn_tech.Tech.imec018 ~die:sub_die
      [ corner_port (name 0 0) (Sn_geometry.Rect.make 5.0 5.0 15.0 15.0);
        corner_port (name 0 (n_side - 1))
          (Sn_geometry.Rect.make 45.0 5.0 55.0 15.0);
        corner_port (name (n_side - 1) 0)
          (Sn_geometry.Rect.make 5.0 45.0 15.0 55.0);
        corner_port
          (name (n_side - 1) (n_side - 1))
          (Sn_geometry.Rect.make 45.0 45.0 55.0 55.0) ]
  in
  List.iteri
    (fun k (p1, p2, ohms) ->
      emit
        (El.Resistor { name = Printf.sprintf "rsub%d" k; n1 = p1; n2 = p2; ohms }))
    (Sn_substrate.Macromodel.to_resistors macro);
  let out = name (n_side - 1) (n_side - 1) in
  emit
    (El.Vsource
       { name = "vin"; np = "emf"; nn = "0"; wave = C.Waveform.dc 0.0;
         ac_mag = 1.0 });
  emit (El.Resistor { name = "rsrc"; n1 = "emf"; n2 = name 0 0; ohms = 50.0 });
  let nl = C.Netlist.create ~title:"bench reduction mesh" !elems in
  let config =
    { R.default_config with R.order = R.Auto 1e-6; band = (1.0e6, 1.0e9) }
  in
  let t_build0 = Unix.gettimeofday () in
  let red = R.reduce_deck ~config ~keep:[ out ] nl in
  let build_s = Unix.gettimeofday () -. t_build0 in
  let stats =
    match R.last_stats () with
    | Some s -> s
    | None -> failwith "bench part9: reduction did not run"
  in
  let n_exact = List.length (C.Netlist.nodes nl) in
  let n_red = List.length (C.Netlist.nodes red) in
  Format.fprintf fmt
    "mesh %dx%d + 4-port substrate: %d nodes -> %d (rank %d, order %d, \
     build %.1f ms)@."
    n_side n_side n_exact n_red stats.R.rank stats.R.order
    (build_s *. 1.0e3);
  let n_pts = if small then 40 else 96 in
  let freqs = N.Sweep.logspace 1.0e6 1.0e9 n_pts in
  let dc_exact = Eng.Dc.solve nl and dc_red = Eng.Dc.solve red in
  let sweep ~dc deck = Eng.Ac.sweep ~dc deck ~freqs ~nodes:[ out ] in
  (* warm both paths before timing (symbolic factorization, plans) *)
  ignore (sweep ~dc:dc_exact nl);
  ignore (sweep ~dc:dc_red red);
  let reps = if small then 5 else 9 in
  let min_of f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  Eng.Pool.set_default_jobs 1;
  let t_exact = min_of (fun () -> sweep ~dc:dc_exact nl) in
  let t_red = min_of (fun () -> sweep ~dc:dc_red red) in
  let speedup = t_exact /. t_red in
  (* matched accuracy: pointwise port-transfer error over the band *)
  let pts_exact = sweep ~dc:dc_exact nl in
  let pts_red = sweep ~dc:dc_red red in
  let max_err = ref 0.0 in
  Array.iteri
    (fun k (pt : Eng.Ac.sweep_point) ->
      let ve = List.assoc out pt.Eng.Ac.values in
      let vr = List.assoc out pts_red.(k).Eng.Ac.values in
      let err =
        Complex.norm (Complex.sub ve vr)
        /. Float.max (Complex.norm ve) 1e-300
      in
      max_err := Float.max !max_err err)
    pts_exact;
  (* parallel byte-identity on the reduced path *)
  Eng.Pool.set_default_jobs 4;
  let pts_par = sweep ~dc:dc_red red in
  Eng.Pool.set_default_jobs (Eng.Pool.env_jobs ());
  let parallel_identical = pts_red = pts_par in
  Format.fprintf fmt
    "%d points: exact %.3f ms, reduced %.3f ms -> %.1fx, max rel err \
     %.2e@."
    n_pts (t_exact *. 1.0e3) (t_red *. 1.0e3) speedup !max_err;
  if !max_err > 1e-4 then
    failwith
      (Printf.sprintf "bench part9: transfer error %.2e > 1e-4" !max_err);
  if not parallel_identical then
    failwith "bench part9: jobs=4 reduced sweep differs from jobs=1";
  if (not small) && speedup < 5.0 then
    failwith
      (Printf.sprintf "bench part9: reduced sweep only %.1fx faster" speedup);
  let oc = open_out "BENCH_8.json" in
  Printf.fprintf oc
    "{\n\
    \  \"reduction\": {\n\
    \    \"mesh_side\": %d,\n\
    \    \"small_mode\": %b,\n\
    \    \"deck_nodes\": %d,\n\
    \    \"reduced_nodes\": %d,\n\
    \    \"ports\": %d,\n\
    \    \"internal\": %d,\n\
    \    \"rank\": %d,\n\
    \    \"order\": %d,\n\
    \    \"build_ms\": %.3f,\n\
    \    \"freq_points\": %d,\n\
    \    \"reps\": %d,\n\
    \    \"exact_ms\": %.4f,\n\
    \    \"reduced_ms\": %.4f,\n\
    \    \"speedup\": %.2f,\n\
    \    \"max_rel_err\": %.3e,\n\
    \    \"parallel_identical\": %b\n\
    \  }\n\
     }\n"
    n_side small n_exact n_red stats.R.ports stats.R.internal stats.R.rank
    stats.R.order (build_s *. 1.0e3) n_pts reps (t_exact *. 1.0e3)
    (t_red *. 1.0e3) speedup !max_err parallel_identical;
  close_out oc;
  Format.fprintf fmt "wrote reduction speedup to BENCH_8.json@.";
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel microbenchmarks, one per table / figure *)

open Bechamel
open Toolkit

(* Fixture for the transient hot path: a linear RC ladder, sized past
   the assembler's dense/sparse crossover so the CSR refill + pattern-
   reusing LU is what gets measured. *)
let tran_ladder_netlist ~stages =
  let module El = Sn_circuit.Element in
  let module W = Sn_circuit.Waveform in
  let node k = if k = 0 then "0" else Printf.sprintf "n%d" k in
  let elements =
    El.Vsource
      { name = "vin"; np = "drive"; nn = "0";
        wave = W.sin_wave ~amplitude:1.0 ~freq:10.0e6 (); ac_mag = 1.0 }
    :: El.Resistor { name = "rin"; n1 = "drive"; n2 = node 1; ohms = 50.0 }
    :: List.concat
         (List.init stages (fun k ->
              let k = k + 1 in
              [ El.Resistor
                  { name = Printf.sprintf "r%d" k; n1 = node k;
                    n2 = node (k + 1); ohms = 100.0 +. float_of_int k };
                El.Capacitor
                  { name = Printf.sprintf "c%d" k; n1 = node k; n2 = "0";
                    farads = 1.0e-12 } ]))
  in
  Sn_circuit.Netlist.create ~title:"bench RC ladder" elements

(* ------------------------------------------------------------------ *)
(* Part 11: numerical pre-flight overhead (BENCH_9.json)

   The verify gate is static analysis only — analyzer rules,
   conditioning span, stiffness spectrum, pool passivity.  Its promise
   is to be nearly free next to the cold work it fronts: this part
   times [Flow.preflight] against the full cold path a served request
   pays (stamp-plan compile + DC bias + complex AC plan) on a mid-size
   RC ladder, and fails when pre-flight costs more than 5% of it. *)

let preflight_overhead () =
  banner
    "Part 11 - pre-flight overhead: static verify vs cold compile \
     (BENCH_9.json)";
  let small = Array.exists (String.equal "small") Sys.argv in
  let min_of reps f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let reps_pre = if small then 9 else 25 in
  (* the shipped example decks, plus the deck `snoise verify` defaults
     to: the merged VCO impact model (substrate + interconnect +
     linearized oscillator core).  The default chip intentionally
     leaves two nwell ports unbound, so that deck carries the matching
     suppressions.

     Each deck's cold path is what a cold request actually pays before
     a solve can be scheduled: for the example files, parse from disk
     plus stamp-plan compile, DC bias and the complex AC plan; for the
     merged VCO model, substrate + interconnect extraction (uncached —
     [build_vco] takes no tile cache) and the merge, then the same
     compile chain.  The pre-flight is the static pass the verify gate
     inserts ahead of that. *)
  let module A = Sn_analysis in
  let default_cfg = A.Analyzer.default in
  let vco_cfg =
    {
      default_cfg with
      A.Analyzer.ignores =
        [ ("unbound-port", Some "nwell:vdd_local");
          ("unbound-port", Some "nwell:vtune_w") ];
    }
  in
  let compile_chain nl =
    let cdeck = Flow.compile_deck ~lint:false nl in
    ignore (Flow.compiled_bias cdeck);
    ignore (Flow.compiled_ac_plan cdeck)
  in
  let build_merged_vco () =
    Flow.vco_merged (Flow.build_vco Sn_testchip.Vco_chip.default ~vtune:0.45)
  in
  let decks =
    List.filter_map
      (fun path ->
        if Sys.file_exists path then
          Some
            ( Filename.basename path,
              Sn_circuit.Spice.load path,
              default_cfg,
              reps_pre,
              fun () -> compile_chain (Sn_circuit.Spice.load path) )
        else None)
      [ "examples/decks/clean_rc.sp"; "examples/decks/probe_divider.sp" ]
    @ [ ( "vco_merged",
          build_merged_vco (),
          vco_cfg,
          (if small then 1 else 3),
          fun () -> compile_chain (build_merged_vco ()) ) ]
  in
  if List.length decks < 3 then
    failwith "bench part10: shipped example decks not found (run from repo root)";
  let rows =
    List.map
      (fun (name, nl, config, reps_cold, cold) ->
        (* the gate itself must pass on every shipped deck *)
        if Flow.preflight_failing (Flow.preflight ~config nl) then
          failwith
            (Printf.sprintf "bench part10: deck %s does not verify clean" name);
        let t_pre = min_of reps_pre (fun () -> Flow.preflight ~config nl) in
        let t_cold = min_of reps_cold cold in
        Format.fprintf fmt
          "%-16s pre-flight %8.3f ms, cold compile %8.3f ms -> %5.1f%%@."
          name (t_pre *. 1.0e3) (t_cold *. 1.0e3)
          (100.0 *. t_pre /. t_cold);
        (name, t_pre, t_cold))
      decks
  in
  let sum f = List.fold_left (fun a r -> a +. f r) 0.0 rows in
  let total_pre = sum (fun (_, p, _) -> p)
  and total_cold = sum (fun (_, _, c) -> c) in
  let ratio = total_pre /. total_cold in
  Format.fprintf fmt "shipped decks total: %.1f%% overhead@."
    (100.0 *. ratio);
  if ratio > 0.05 then
    failwith
      (Printf.sprintf "bench part10: pre-flight overhead %.1f%% > 5%%"
         (100.0 *. ratio));
  let oc = open_out "BENCH_9.json" in
  Printf.fprintf oc
    "{\n\
    \  \"preflight\": {\n\
    \    \"small_mode\": %b,\n\
    \    \"reps\": %d,\n\
    \    \"decks\": [\n\
     %s\n\
    \    ],\n\
    \    \"preflight_ms\": %.4f,\n\
    \    \"cold_compile_ms\": %.4f,\n\
    \    \"overhead_ratio\": %.4f\n\
    \  }\n\
     }\n"
    small reps_pre
    (String.concat ",\n"
       (List.map
          (fun (name, p, c) ->
            Printf.sprintf
              "      {\"deck\": %S, \"preflight_ms\": %.4f, \
               \"cold_compile_ms\": %.4f}"
              name (p *. 1.0e3) (c *. 1.0e3))
          rows))
    (total_pre *. 1.0e3) (total_cold *. 1.0e3) ratio;
  close_out oc;
  Format.fprintf fmt "wrote pre-flight overhead to BENCH_9.json@.";
  Format.pp_print_flush fmt ()

(* Fixture for direct elimination: a 48x48 surface mesh with four port
   regions — the network is rebuilt per run because elimination
   consumes it. *)
let elim_n = 48

let elim_edges, elim_ports =
  let n = elim_n in
  let idx x y = (y * n) + x in
  let edges = ref [] in
  for y = 0 to n - 1 do
    for x = 0 to n - 1 do
      if x + 1 < n then
        edges :=
          (idx x y, idx (x + 1) y, 1.0e-3 *. (1.0 +. (0.1 *. float_of_int y)))
          :: !edges;
      if y + 1 < n then
        edges :=
          (idx x y, idx x (y + 1), 1.3e-3 *. (1.0 +. (0.05 *. float_of_int x)))
          :: !edges
    done
  done;
  ( !edges,
    [| idx 3 3; idx (n - 4) 3; idx 3 (n - 4); idx (n - 4) (n - 4) |] )

let bench_tests () =
  (* shared fixtures built once *)
  let nmos_flow = Flow.build_nmos Sn_testchip.Nmos_structure.default in
  let vco_flow = Flow.build_vco Sn_testchip.Vco_chip.default ~vtune:0.0 in
  let f_noise = E.default_f_noise in
  let h = Flow.vco_transfers vco_flow ~f_noise in
  let osc = Flow.vco_oscillator vco_flow in
  let small_grid =
    { Sn_substrate.Grid.nx = 24; ny = 24; z_per_layer = Some [ 1; 2; 2; 1 ] }
  in
  let layout = Sn_testchip.Nmos_structure.layout Sn_testchip.Nmos_structure.default in
  let merged = Flow.vco_merged vco_flow in
  let vco_dc = Sn_engine.Dc.solve merged in
  [
    Test.make ~name:"fig3_nmos_transfer"
      (Staged.stage (fun () ->
           ignore (Flow.nmos_transfer nmos_flow ~vgs:0.8 ~vds:0.8 ~freq:5.0e6)));
    Test.make ~name:"sec3_division_crossover"
      (Staged.stage (fun () -> ignore (Flow.nmos_divider nmos_flow)));
    Test.make ~name:"fig7_output_spectrum"
      (Staged.stage (fun () ->
           let beta, m_am =
             Sn_rf.Impact.total_modulation osc ~h:(h 10.0e6) ~a_noise:0.178
               ~f_noise:10.0e6
           in
           let samples =
             Sn_rf.Behavioral.synthesize ~carrier_freq:64.0e6
               ~amplitude:osc.Sn_rf.Impact.amplitude
               ~tones:[ { Sn_rf.Behavioral.f_noise = 10.0e6; beta; m_am } ]
               ~fs:320.0e6 ~n:16384
           in
           ignore
             (Sn_rf.Behavioral.measured_sideband_dbm samples ~fs:320.0e6
                ~carrier_freq:64.0e6 ~f_noise:10.0e6 `Upper)));
    Test.make ~name:"fig8_spur_vs_fnoise"
      (Staged.stage (fun () ->
           Array.iter
             (fun fn ->
               ignore
                 (Flow.vco_spur vco_flow ~h ~p_noise_dbm:(-5.0) ~f_noise:fn))
             f_noise));
    Test.make ~name:"fig9_contributions"
      (Staged.stage (fun () ->
           ignore (Flow.vco_spur vco_flow ~h ~p_noise_dbm:(-5.0) ~f_noise:10.0e6)));
    Test.make ~name:"fig10_ground_sizing"
      (Staged.stage (fun () ->
           ignore (Flow.vco_ground_wire_resistance vco_flow)));
    Test.make ~name:"vco_design_card"
      (Staged.stage (fun () ->
           let tank = Sn_rf.Tank.default_3ghz in
           let bias = Sn_rf.Tank.quiet_bias ~v_tune:0.45 in
           List.iter
             (fun e -> ignore (Sn_rf.Tank.sensitivity tank bias e))
             Sn_rf.Tank.
               [ Ground; Backgate; Pmos_well; Varactor_well; Inductor_node ]));
    Test.make ~name:"runtime_extraction_small_grid"
      (Staged.stage (fun () ->
           ignore
             (Sn_substrate.Extractor.extract_from_layout ~config:small_grid
                ~tech:Sn_tech.Tech.imec018 layout)));
    Test.make ~name:"runtime_simulation_ac_solve"
      (Staged.stage (fun () ->
           ignore (Sn_engine.Ac.solve ~dc:vco_dc merged ~freq:10.0e6)));
    (let nl = tran_ladder_netlist ~stages:80 in
     let options =
       { Sn_engine.Tran.default_options with
         Sn_engine.Tran.ic = Sn_engine.Tran.Uic [];
         record = Some [ "n80" ] }
     in
     Test.make ~name:"tran_fixed_step"
       (Staged.stage (fun () ->
            ignore
              (Sn_engine.Tran.simulate ~options ~tstop:2.0e-6 ~dt:1.0e-8 nl))));
    Test.make ~name:"substrate_elimination"
      (Staged.stage (fun () ->
           let module Elim = Sn_substrate.Elimination in
           let net =
             Elim.of_conductances ~n:(elim_n * elim_n) ~ports:elim_ports
               elim_edges
           in
           Elim.eliminate_internal net;
           ignore (Elim.port_conductance net)));
  ]

(* Machine-readable trajectory: benchmark name -> ns/run, so successive
   revisions can be diffed mechanically. *)
let emit_json ~path entries =
  let oc = open_out path in
  let n = List.length entries in
  output_string oc "{\n";
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "  %S: { \"ns_per_run\": %.3f }%s\n" name ns
        (if i = n - 1 then "" else ","))
    entries;
  output_string oc "}\n";
  close_out oc

let strip_group_prefix name =
  let prefix = "snoise " in
  let lp = String.length prefix in
  if String.length name > lp && String.sub name 0 lp = prefix then
    String.sub name lp (String.length name - lp)
  else name

let run_benchmarks () =
  banner "Part 2 - Bechamel microbenchmarks (one per table / figure)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let grouped =
    Test.make_grouped ~name:"snoise" ~fmt:"%s %s" (bench_tests ())
  in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.fprintf fmt "%-34s %16s@." "benchmark" "time/run";
  let json = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
        json := (strip_group_prefix name, est) :: !json;
        let human =
          if est >= 1.0e9 then Printf.sprintf "%8.2f s " (est /. 1.0e9)
          else if est >= 1.0e6 then Printf.sprintf "%8.2f ms" (est /. 1.0e6)
          else if est >= 1.0e3 then Printf.sprintf "%8.2f us" (est /. 1.0e3)
          else Printf.sprintf "%8.0f ns" est
        in
        Format.fprintf fmt "%-34s %16s@." name human
      | _ -> Format.fprintf fmt "%-34s %16s@." name "n/a")
    results;
  let entries =
    List.sort (fun (a, _) (b, _) -> String.compare a b) !json
  in
  emit_json ~path:"BENCH_1.json" entries;
  Format.fprintf fmt "wrote %d benchmark entries to BENCH_1.json@."
    (List.length entries);
  Format.pp_print_flush fmt ()

let () =
  (* "bench part4" / "bench part5" run a single cheap part: the
     robustness-overhead probes and the frequency-domain engine smoke
     gate respectively *)
  if Array.exists (String.equal "part4") Sys.argv then rescue_overhead ()
  else if Array.exists (String.equal "part5") Sys.argv then
    frequency_domain ()
  else if Array.exists (String.equal "part6") Sys.argv then
    extraction_scaling ()
  else if Array.exists (String.equal "part7") Sys.argv then
    serving_throughput ()
  else if Array.exists (String.equal "part8") Sys.argv then
    cancellation_overhead ()
  else if Array.exists (String.equal "part9") Sys.argv then
    reduction_speedup ()
  else if Array.exists (String.equal "part10") Sys.argv then
    preflight_overhead ()
  else begin
    reproduce_all ();
    ablation_grid ();
    ablation_interconnect ();
    ablation_backplane ();
    ablation_corners ();
    sweep_scaling ();
    rescue_overhead ();
    frequency_domain ();
    extraction_scaling ();
    serving_throughput ();
    cancellation_overhead ();
    reduction_speedup ();
    preflight_overhead ();
    run_benchmarks ()
  end;
  Format.fprintf fmt "@.bench: done@.";
  Format.pp_print_flush fmt ()
