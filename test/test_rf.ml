(* Tests for sn_rf: the tank model and K_i sensitivities, the FM/AM
   spur equations against hand-derived values, the behavioral
   synthesizer against FM theory, and the Leeson estimate. *)

module Tank = Sn_rf.Tank
module Impact = Sn_rf.Impact
module Behavioral = Sn_rf.Behavioral
module Pn = Sn_rf.Phase_noise
module U = Sn_numerics.Units

let check_close tol = Alcotest.(check (float tol))

let tank = Tank.default_3ghz
let bias = Tank.quiet_bias ~v_tune:0.45

(* ------------------------------------------------------------------ *)
(* Tank *)

let test_tank_3ghz () =
  let f = Tank.frequency tank bias in
  Alcotest.(check bool)
    (Printf.sprintf "fc = %.2f GHz near 3" (f /. 1e9))
    true
    (f > 2.6e9 && f < 3.8e9)

let test_tank_capacitance_positive_and_tuned () =
  let c0 = Tank.capacitance tank (Tank.quiet_bias ~v_tune:0.0) in
  let c9 = Tank.capacitance tank (Tank.quiet_bias ~v_tune:0.9) in
  Alcotest.(check bool) "C > 0" true (c0 > 0.0);
  (* higher tuning voltage lowers the varactor bias -> less C *)
  Alcotest.(check bool) "tuning reduces C" true (c9 < c0)

let test_junction_capacitance_law () =
  let j = { Tank.c0 = 100e-15; phi_b = 0.8; grading = 0.5 } in
  check_close 1e-18 "zero bias" 100e-15 (Tank.junction_capacitance j 0.0);
  check_close 1e-18 "reverse bias shrinks"
    (100e-15 /. sqrt 2.0)
    (Tank.junction_capacitance j 0.8);
  (* forward-bias clamp keeps it finite *)
  Alcotest.(check bool) "clamped" true
    (Float.is_finite (Tank.junction_capacitance j (-2.0)))

let test_ground_mirror_of_varactor_well () =
  (* a ground bounce changes the varactor bias exactly opposite to a
     tuning-node shift, so the sensitivities mirror *)
  let k_gnd = Tank.sensitivity tank bias Tank.Ground in
  let k_var = Tank.sensitivity tank bias Tank.Varactor_well in
  Alcotest.(check bool) "opposite signs" true (k_gnd *. k_var < 0.0);
  Alcotest.(check bool) "similar magnitude" true
    (Float.abs (Float.abs k_gnd /. Float.abs k_var -. 1.0) < 0.2)

let test_ground_sensitivity_dominates_backgate () =
  (* the varactor slope beats the junction-cap slope by an order of
     magnitude: the root of the paper's 20 dB gap *)
  let k_gnd = Float.abs (Tank.sensitivity tank bias Tank.Ground) in
  let k_bg = Float.abs (Tank.sensitivity tank bias Tank.Backgate) in
  Alcotest.(check bool)
    (Printf.sprintf "K_gnd/K_bg = %.1f" (k_gnd /. k_bg))
    true
    (k_gnd /. k_bg > 5.0)

let test_sensitivity_is_derivative () =
  (* central difference at a different step must agree *)
  let k = Tank.sensitivity tank bias Tank.Ground in
  let dv = 1e-3 in
  let fp = Tank.frequency tank (Tank.apply_entry bias Tank.Ground dv) in
  let fm = Tank.frequency tank (Tank.apply_entry bias Tank.Ground (-.dv)) in
  let k' = (fp -. fm) /. (2.0 *. dv) in
  Alcotest.(check bool) "derivative consistent" true
    (Float.abs (k -. k') /. Float.abs k < 1e-3)

let test_kvco_sign_and_magnitude () =
  let k = Tank.kvco tank ~v_tune:0.45 in
  (* raising v_tune lowers the varactor bias, shrinks C, raises f *)
  Alcotest.(check bool) "positive tuning gain" true (k > 0.0);
  Alcotest.(check bool) "hundreds of MHz/V" true (k > 1e8 && k < 2e9)

(* ------------------------------------------------------------------ *)
(* Impact model *)

let one_entry_osc k g_am =
  {
    Impact.carrier_freq = 3.0e9;
    amplitude = 0.4;
    entries =
      [ { Impact.label = "e"; node = "n"; k_hz_per_v = k; g_am_per_v = g_am } ];
  }

let const_h v _node = { Complex.re = v; im = 0.0 }

let test_spur_matches_eq2 () =
  (* pure FM: |V(fc+fn)| = Ac K H A / (2 fn)  (paper eq. 2) *)
  let k = 1.0e8 and h = 1.0e-3 and a_noise = 0.1 and fn = 1.0e6 in
  let osc = one_entry_osc k 0.0 in
  let s = Impact.spur osc ~h:(const_h h) ~a_noise ~f_noise:fn in
  let expected = 0.4 *. k *. h *. a_noise /. (2.0 *. fn) in
  check_close 0.01 "eq 2" (U.dbm_of_vpeak expected) s.Impact.upper_dbm;
  check_close 0.05 "lower = upper for pure FM" s.Impact.upper_dbm
    s.Impact.lower_dbm

let test_spur_matches_eq3 () =
  (* pure AM: |V(fc+-fn)| = Ac H A G / 2, frequency independent *)
  let g = 0.5 and h = 1.0e-3 and a_noise = 0.1 in
  let osc = one_entry_osc 0.0 g in
  let s1 = Impact.spur osc ~h:(const_h h) ~a_noise ~f_noise:1.0e6 in
  let s2 = Impact.spur osc ~h:(const_h h) ~a_noise ~f_noise:10.0e6 in
  let expected = 0.4 *. h *. a_noise *. g /. 2.0 in
  check_close 0.01 "eq 3" (U.dbm_of_vpeak expected) s1.Impact.upper_dbm;
  check_close 0.01 "AM flat in frequency" s1.Impact.upper_dbm
    s2.Impact.upper_dbm

let test_fm_scales_inverse_f () =
  let osc = one_entry_osc 1.0e8 0.0 in
  let at fn =
    (Impact.spur osc ~h:(const_h 1e-3) ~a_noise:0.1 ~f_noise:fn).Impact.upper_dbm
  in
  check_close 0.01 "-20 dB per decade" 20.0 (at 1.0e6 -. at 1.0e7)

let test_superposition_of_entries () =
  (* two identical in-phase entries double the spur voltage: +6 dB *)
  let osc2 =
    {
      Impact.carrier_freq = 3.0e9;
      amplitude = 0.4;
      entries =
        [ { Impact.label = "a"; node = "n"; k_hz_per_v = 1.0e8; g_am_per_v = 0.0 };
          { Impact.label = "b"; node = "n"; k_hz_per_v = 1.0e8; g_am_per_v = 0.0 } ];
    }
  in
  let s1 =
    Impact.spur (one_entry_osc 1.0e8 0.0) ~h:(const_h 1e-3) ~a_noise:0.1
      ~f_noise:1.0e6
  in
  let s2 = Impact.spur osc2 ~h:(const_h 1e-3) ~a_noise:0.1 ~f_noise:1.0e6 in
  check_close 0.02 "+6 dB" 6.02 (s2.Impact.upper_dbm -. s1.Impact.upper_dbm)

let test_opposing_entries_cancel () =
  let osc =
    {
      Impact.carrier_freq = 3.0e9;
      amplitude = 0.4;
      entries =
        [ { Impact.label = "a"; node = "n"; k_hz_per_v = 1.0e8; g_am_per_v = 0.0 };
          { Impact.label = "b"; node = "n"; k_hz_per_v = -1.0e8; g_am_per_v = 0.0 } ];
    }
  in
  let s = Impact.spur osc ~h:(const_h 1e-3) ~a_noise:0.1 ~f_noise:1.0e6 in
  Alcotest.(check bool) "cancellation" true (s.Impact.upper_dbm < -200.0)

let test_am_fm_asymmetry () =
  (* AM and FM arriving through paths of different phase split the
     sidebands; with identical phases |m + j beta| = |m - j beta| and
     they cannot split (which is why the paper's measured asymmetry is
     small) *)
  let osc =
    {
      Impact.carrier_freq = 3.0e9;
      amplitude = 0.4;
      entries =
        [ { Impact.label = "fm"; node = "n1"; k_hz_per_v = 1.0e8;
            g_am_per_v = 0.0 };
          { Impact.label = "am"; node = "n2"; k_hz_per_v = 0.0;
            g_am_per_v = 5.0 } ];
    }
  in
  let h node =
    if String.equal node "n1" then { Complex.re = 1e-3; im = 0.0 }
    else { Complex.re = 0.0; im = 1e-3 }
  in
  let s = Impact.spur osc ~h ~a_noise:0.1 ~f_noise:10.0e6 in
  Alcotest.(check bool) "sidebands differ" true
    (Float.abs (s.Impact.upper_dbm -. s.Impact.lower_dbm) > 0.5);
  (* same phases: no split *)
  let s_same =
    Impact.spur (one_entry_osc 1.0e8 5.0) ~h:(const_h 1e-3) ~a_noise:0.1
      ~f_noise:10.0e6
  in
  Alcotest.(check bool) "same-phase paths do not split" true
    (Float.abs (s_same.Impact.upper_dbm -. s_same.Impact.lower_dbm) < 1e-6)

let test_invalid_f_noise () =
  Alcotest.check_raises "f_noise 0"
    (Invalid_argument "Impact.spur: f_noise must be > 0") (fun () ->
      ignore
        (Impact.spur (one_entry_osc 1.0 0.0) ~h:(const_h 1.0) ~a_noise:1.0
           ~f_noise:0.0))

(* ------------------------------------------------------------------ *)
(* Behavioral synthesis *)

let test_behavioral_matches_bessel () =
  (* narrowband FM: first sideband amplitude = Ac J1(beta) ~ Ac beta/2 *)
  let beta = 0.05 and fc = 50.0e6 and fn = 5.0e6 and fs = 250.0e6 in
  let samples =
    Behavioral.synthesize ~carrier_freq:fc ~amplitude:1.0
      ~tones:
        [ { Behavioral.f_noise = fn; beta = { Complex.re = beta; im = 0.0 };
            m_am = Complex.zero } ]
      ~fs ~n:65536
  in
  let upper =
    Behavioral.measured_sideband_dbm samples ~fs ~carrier_freq:fc ~f_noise:fn
      `Upper
  in
  let expected = U.dbm_of_vpeak (beta /. 2.0) in
  check_close 0.1 "J1 approximation" expected upper

let test_behavioral_carrier_level () =
  let fc = 50.0e6 and fs = 250.0e6 in
  let samples =
    Behavioral.synthesize ~carrier_freq:fc ~amplitude:0.4 ~tones:[] ~fs
      ~n:16384
  in
  check_close 0.05 "carrier dBm" (U.dbm_of_vpeak 0.4)
    (Behavioral.carrier_dbm samples ~fs ~carrier_freq:fc)

let test_behavioral_rejects_undersampling () =
  Alcotest.(check bool) "fs <= 2 fc rejected" true
    (match
       Behavioral.synthesize ~carrier_freq:100.0e6 ~amplitude:1.0 ~tones:[]
         ~fs:150.0e6 ~n:16
     with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_behavioral_multitone () =
  (* two tones produce two independent spur pairs *)
  let fc = 50.0e6 and fs = 250.0e6 in
  let tone fn beta =
    { Behavioral.f_noise = fn; beta = { Complex.re = beta; im = 0.0 };
      m_am = Complex.zero }
  in
  let samples =
    Behavioral.synthesize ~carrier_freq:fc ~amplitude:1.0
      ~tones:[ tone 3.0e6 0.02; tone 7.0e6 0.04 ] ~fs ~n:65536
  in
  let at fn =
    Behavioral.measured_sideband_dbm samples ~fs ~carrier_freq:fc ~f_noise:fn
      `Upper
  in
  check_close 0.2 "tone 1" (U.dbm_of_vpeak 0.01) (at 3.0e6);
  check_close 0.2 "tone 2" (U.dbm_of_vpeak 0.02) (at 7.0e6)

(* ------------------------------------------------------------------ *)
(* Digital aggressor *)

module Aggressor = Sn_rf.Aggressor

let test_aggressor_harmonics () =
  let a = Aggressor.default in
  let a1 = Aggressor.harmonic_amplitude a 1 in
  Alcotest.(check bool) "fundamental positive" true (a1 > 0.0);
  (* dc-free sanity: amplitude bounded by twice the average current *)
  let avg = a.Aggressor.peak_current *. a.Aggressor.pulse_width /. 2.0
            *. a.Aggressor.clock_freq in
  Alcotest.(check bool) "a1 <= 2 avg" true (a1 <= 2.0 *. avg +. 1e-12);
  (* sinc^2 rolloff: harmonics decay monotonically for this pulse *)
  let rec monotone k =
    k >= a.Aggressor.harmonics
    || (Aggressor.harmonic_amplitude a (k + 1)
        <= Aggressor.harmonic_amplitude a k +. 1e-15
        && monotone (k + 1))
  in
  Alcotest.(check bool) "rolloff" true (monotone 1);
  Alcotest.check_raises "k = 0 rejected"
    (Invalid_argument "Aggressor.harmonic_amplitude: k must be >= 1")
    (fun () -> ignore (Aggressor.harmonic_amplitude a 0))

let test_aggressor_comb () =
  let a = { Aggressor.default with Aggressor.harmonics = 4 } in
  let osc = one_entry_osc 1.0e8 0.0 in
  let comb = Aggressor.spur_comb a ~osc ~h:(fun _f -> const_h 1e-3) in
  Alcotest.(check int) "4 lines" 4 (List.length comb);
  (* with a flat resistive H, the comb decays: less injected current
     and 1/f FM *)
  (match comb with
   | first :: rest ->
     List.iter
       (fun (l : Aggressor.comb_line) ->
         Alcotest.(check bool) "fundamental dominates" true
           (l.Aggressor.upper_dbm <= first.Aggressor.upper_dbm))
       rest
   | [] -> Alcotest.fail "empty comb");
  (* total power at least the strongest line *)
  let total = Aggressor.total_spur_power_dbm comb in
  List.iter
    (fun (l : Aggressor.comb_line) ->
      Alcotest.(check bool) "total >= line" true
        (total >= l.Aggressor.upper_dbm -. 1e-9))
    comb

(* ------------------------------------------------------------------ *)
(* Phase noise *)

let test_leeson_card () =
  let l = Pn.dbc_per_hz Pn.default_vco 100.0e3 in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f dBc/Hz near -100" l)
    true
    (l > -105.0 && l < -95.0)

let test_leeson_slope () =
  (* in the 1/f^2 region the noise falls 20 dB/decade *)
  let at f = Pn.dbc_per_hz Pn.default_vco f in
  let slope = at 1.0e6 -. at 1.0e5 in
  Alcotest.(check bool)
    (Printf.sprintf "slope %.1f in [-26, -18]" slope)
    true
    (slope < -18.0 && slope > -26.0)

let test_spur_equivalent () =
  check_close 1e-9 "beta to dBc" (-40.0)
    (Pn.spur_equivalent_dbc ~beta:0.02)

(* ------------------------------------------------------------------ *)
(* the bounded LRU behind the serving layer's flow cache *)

module Lru = Sn_rf.Lru

let test_lru_eviction () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  (* touching "a" makes "b" the eviction victim *)
  Alcotest.(check (option int)) "hit touches" (Some 1) (Lru.find c "a");
  Lru.add c "c" 3;
  Alcotest.(check (option int)) "LRU evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "touched kept" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "newest kept" (Some 3) (Lru.find c "c");
  Alcotest.(check int) "bounded" 2 (Lru.length c);
  Alcotest.(check int) "eviction counted" 1 (Lru.evictions c)

let test_lru_replace_and_trim () =
  let c = Lru.create ~capacity:3 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  (* replacing a resident key refreshes its recency without evicting *)
  Lru.add c "a" 10;
  Alcotest.(check int) "replace keeps size" 3 (Lru.length c);
  Alcotest.(check (option int)) "replaced value" (Some 10) (Lru.find c "a");
  (* shedding: trim to one entry keeps the most recently used *)
  Alcotest.(check int) "trim drops" 2 (Lru.trim c ~max_entries:1);
  Alcotest.(check int) "trimmed" 1 (Lru.length c);
  Alcotest.(check (option int)) "MRU survives trim" (Some 10) (Lru.find c "a");
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c);
  match Lru.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 accepted"

let suites =
  [
    ( "rf.tank",
      [
        Alcotest.test_case "3 GHz tank" `Quick test_tank_3ghz;
        Alcotest.test_case "tuning shrinks C" `Quick
          test_tank_capacitance_positive_and_tuned;
        Alcotest.test_case "junction law" `Quick test_junction_capacitance_law;
        Alcotest.test_case "ground mirrors varactor well" `Quick
          test_ground_mirror_of_varactor_well;
        Alcotest.test_case "ground >> backgate sensitivity" `Quick
          test_ground_sensitivity_dominates_backgate;
        Alcotest.test_case "K is the derivative" `Quick
          test_sensitivity_is_derivative;
        Alcotest.test_case "kvco" `Quick test_kvco_sign_and_magnitude;
      ] );
    ( "rf.impact",
      [
        Alcotest.test_case "eq (2) FM spur" `Quick test_spur_matches_eq2;
        Alcotest.test_case "eq (3) AM spur" `Quick test_spur_matches_eq3;
        Alcotest.test_case "FM 1/f law" `Quick test_fm_scales_inverse_f;
        Alcotest.test_case "superposition" `Quick test_superposition_of_entries;
        Alcotest.test_case "cancellation" `Quick test_opposing_entries_cancel;
        Alcotest.test_case "AM/FM sideband asymmetry" `Quick
          test_am_fm_asymmetry;
        Alcotest.test_case "invalid f_noise" `Quick test_invalid_f_noise;
      ] );
    ( "rf.behavioral",
      [
        Alcotest.test_case "FM sideband = J1(beta)" `Quick
          test_behavioral_matches_bessel;
        Alcotest.test_case "carrier level" `Quick test_behavioral_carrier_level;
        Alcotest.test_case "undersampling rejected" `Quick
          test_behavioral_rejects_undersampling;
        Alcotest.test_case "multi-tone" `Quick test_behavioral_multitone;
      ] );
    ( "rf.aggressor",
      [
        Alcotest.test_case "harmonic spectrum" `Quick test_aggressor_harmonics;
        Alcotest.test_case "spur comb" `Quick test_aggressor_comb;
      ] );
    ( "rf.phase_noise",
      [
        Alcotest.test_case "Leeson card" `Quick test_leeson_card;
        Alcotest.test_case "1/f^2 slope" `Quick test_leeson_slope;
        Alcotest.test_case "spur equivalent" `Quick test_spur_equivalent;
      ] );
    ( "rf.lru",
      [
        Alcotest.test_case "eviction order" `Quick test_lru_eviction;
        Alcotest.test_case "replace and trim" `Quick test_lru_replace_and_trim;
      ] );
  ]
