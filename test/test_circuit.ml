(* Tests for sn_circuit: waveforms, device models, netlist rules, and
   the SPICE text format. *)

module C = Sn_circuit
module W = C.Waveform
module M = C.Mos_model
module V = C.Varactor_model

let check_float = Alcotest.(check (float 1e-9))
let check_close tol = Alcotest.(check (float tol))

(* ------------------------------------------------------------------ *)
(* waveforms *)

let test_sin_wave () =
  let w = W.sin_wave ~offset:1.0 ~amplitude:2.0 ~freq:1.0 () in
  check_close 1e-9 "t=0" 1.0 (W.value w 0.0);
  check_close 1e-9 "quarter period" 3.0 (W.value w 0.25);
  check_close 1e-9 "dc value is offset" 1.0 (W.dc_value w)

let test_pulse_wave () =
  let w =
    W.pulse ~delay:1.0 ~rise:0.1 ~fall:0.1 ~v1:0.0 ~v2:5.0 ~width:1.0
      ~period:10.0 ()
  in
  check_float "before delay" 0.0 (W.value w 0.5);
  check_close 1e-9 "mid rise" 2.5 (W.value w 1.05);
  check_float "plateau" 5.0 (W.value w 1.5);
  check_close 1e-9 "mid fall" 2.5 (W.value w 2.15);
  check_float "after" 0.0 (W.value w 5.0);
  check_float "periodic" 5.0 (W.value w 11.5)

let test_pwl_wave () =
  let w = W.pwl [ (0.0, 0.0); (1.0, 2.0); (3.0, 2.0); (4.0, 0.0) ] in
  check_float "interp" 1.0 (W.value w 0.5);
  check_float "flat" 2.0 (W.value w 2.0);
  check_float "clamp" 0.0 (W.value w 10.0);
  Alcotest.check_raises "non-monotone"
    (Invalid_argument "Waveform.pwl: times must be strictly increasing")
    (fun () -> ignore (W.pwl [ (1.0, 0.0); (0.5, 1.0) ]))

(* ------------------------------------------------------------------ *)
(* MOS model *)

let nmos = M.default_nmos

let test_mos_cutoff () =
  let op = M.evaluate nmos ~w:10e-6 ~l:0.18e-6 ~vgs:0.2 ~vds:1.0 ~vbs:0.0 in
  Alcotest.(check bool) "cutoff" true (op.M.region = `Cutoff);
  check_float "no current" 0.0 op.M.id

let test_mos_saturation () =
  let op = M.evaluate nmos ~w:10e-6 ~l:0.18e-6 ~vgs:1.0 ~vds:1.5 ~vbs:0.0 in
  Alcotest.(check bool) "saturation" true (op.M.region = `Saturation);
  (* id = kp/2 W/L vov^2 (1 + lambda vds) *)
  let vov = 1.0 -. nmos.M.vt0 in
  let expected =
    0.5 *. nmos.M.kp *. (10.0 /. 0.18) *. vov *. vov
    *. (1.0 +. (nmos.M.lambda *. 1.5))
  in
  check_close 1e-9 "square law" expected op.M.id;
  Alcotest.(check bool) "gm > 0" true (op.M.gm > 0.0);
  Alcotest.(check bool) "gds > 0" true (op.M.gds > 0.0)

let test_mos_triode () =
  let op = M.evaluate nmos ~w:10e-6 ~l:0.18e-6 ~vgs:1.5 ~vds:0.1 ~vbs:0.0 in
  Alcotest.(check bool) "triode" true (op.M.region = `Triode)

let test_mos_body_effect () =
  (* reverse body bias raises vth and produces gmb > 0 *)
  let op0 = M.evaluate nmos ~w:10e-6 ~l:0.18e-6 ~vgs:1.0 ~vds:1.5 ~vbs:0.0 in
  let op1 =
    M.evaluate nmos ~w:10e-6 ~l:0.18e-6 ~vgs:1.0 ~vds:1.5 ~vbs:(-0.5)
  in
  Alcotest.(check bool) "vth rises" true (op1.M.vth > op0.M.vth);
  Alcotest.(check bool) "gmb > 0" true (op0.M.gmb > 0.0);
  (* gmb = gm * gamma / (2 sqrt (phi + vsb)) *)
  let expected = op0.M.gm *. nmos.M.gamma /. (2.0 *. sqrt nmos.M.phi) in
  check_close 1e-12 "gmb relation" expected op0.M.gmb

let test_mos_gmb_derivative () =
  (* gmb must match the numerical derivative dId/dVbs *)
  let f vbs =
    (M.evaluate nmos ~w:10e-6 ~l:0.18e-6 ~vgs:1.0 ~vds:1.5 ~vbs).M.id
  in
  let h = 1e-6 in
  let numeric = (f (-0.3 +. h) -. f (-0.3 -. h)) /. (2.0 *. h) in
  let op = M.evaluate nmos ~w:10e-6 ~l:0.18e-6 ~vgs:1.0 ~vds:1.5 ~vbs:(-0.3) in
  check_close 1e-7 "gmb = dId/dVbs" numeric op.M.gmb

let test_mos_gm_gds_derivatives () =
  let at ~vgs ~vds =
    (M.evaluate nmos ~w:10e-6 ~l:0.18e-6 ~vgs ~vds ~vbs:0.0).M.id
  in
  let h = 1e-6 in
  let gm_num = (at ~vgs:(1.0 +. h) ~vds:1.5 -. at ~vgs:(1.0 -. h) ~vds:1.5) /. (2.0 *. h) in
  let gds_num = (at ~vgs:1.0 ~vds:(1.5 +. h) -. at ~vgs:1.0 ~vds:(1.5 -. h)) /. (2.0 *. h) in
  let op = M.evaluate nmos ~w:10e-6 ~l:0.18e-6 ~vgs:1.0 ~vds:1.5 ~vbs:0.0 in
  check_close 1e-7 "gm" gm_num op.M.gm;
  check_close 1e-7 "gds" gds_num op.M.gds

let test_mos_invalid_geometry () =
  Alcotest.check_raises "w = 0"
    (Invalid_argument "Mos_model.evaluate: w, l must be > 0") (fun () ->
      ignore (M.evaluate nmos ~w:0.0 ~l:1e-6 ~vgs:1.0 ~vds:1.0 ~vbs:0.0))

(* ------------------------------------------------------------------ *)
(* varactor *)

let test_varactor_limits () =
  let m = V.default in
  Alcotest.(check bool) "C(-inf) -> cmin" true
    (Float.abs (V.capacitance m (-5.0) -. m.V.cmin) < 0.01 *. m.V.cmin);
  Alcotest.(check bool) "C(+inf) -> cmax" true
    (Float.abs (V.capacitance m 5.0 -. m.V.cmax) < 0.01 *. m.V.cmax);
  Alcotest.(check bool) "monotone" true
    (V.capacitance m 0.2 < V.capacitance m 0.6)

let test_varactor_charge_consistent () =
  (* dQ/dV = C within numerical accuracy, across the transition *)
  let m = V.default in
  let h = 1e-6 in
  List.iter
    (fun v ->
      let dq = (V.charge m (v +. h) -. V.charge m (v -. h)) /. (2.0 *. h) in
      check_close 1e-18 (Printf.sprintf "dQ/dV at %g" v) (V.capacitance m v) dq)
    [ -1.0; 0.0; 0.3; 0.45; 0.6; 1.5 ]

let test_varactor_sensitivity_peak () =
  let m = V.default in
  Alcotest.(check bool) "dC/dV maximal at v0" true
    (V.sensitivity m m.V.v0 > V.sensitivity m (m.V.v0 +. 0.3)
     && V.sensitivity m m.V.v0 > V.sensitivity m (m.V.v0 -. 0.3))

let prop_varactor_charge_monotone =
  QCheck.Test.make ~count:100 ~name:"varactor charge is increasing"
    QCheck.(pair (float_range (-2.0) 2.0) (float_range 0.001 2.0))
    (fun (v, dv) ->
      let m = V.default in
      V.charge m (v +. dv) > V.charge m v)

(* ------------------------------------------------------------------ *)
(* netlist construction *)

let r name n1 n2 ohms = C.Element.Resistor { name; n1; n2; ohms }

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_netlist_rules () =
  (* duplicate names rejected *)
  (match C.Netlist.create [ r "r1" "a" "0" 1.0; r "r1" "b" "0" 2.0 ] with
   | exception C.Netlist.Invalid [ msg ] ->
     Alcotest.(check string) "duplicate" "duplicate element name: r1" msg
   | _ -> Alcotest.fail "expected Invalid");
  (* missing ground rejected *)
  (match C.Netlist.create [ r "r1" "a" "b" 1.0 ] with
   | exception C.Netlist.Invalid msgs ->
     Alcotest.(check bool) "ground message" true
       (List.exists (fun m -> contains_sub m "no ground") msgs)
   | _ -> Alcotest.fail "expected Invalid");
  (* negative values are legal (reduced-order macromodel branches)
     but zero / non-finite stay rejected *)
  (match C.Netlist.create [ r "r1" "a" "0" (-1.0) ] with
   | exception C.Netlist.Invalid _ ->
     Alcotest.fail "negative resistance should validate"
   | _ -> ());
  match C.Netlist.create [ r "r1" "a" "0" 0.0 ] with
  | exception C.Netlist.Invalid _ -> ()
  | _ -> Alcotest.fail "expected Invalid"

let test_netlist_queries () =
  let nl =
    C.Netlist.create ~title:"t"
      [ r "r1" "a" "0" 1.0; r "r2" "a" "b" 2.0 ]
  in
  Alcotest.(check (list string)) "nodes" [ "a"; "b" ] (C.Netlist.nodes nl);
  Alcotest.(check bool) "gnd is node" true (C.Netlist.mem_node nl "0");
  Alcotest.(check bool) "find" true
    (match C.Netlist.find nl "r2" with
     | C.Element.Resistor { ohms; _ } -> ohms = 2.0
     | _ -> false)

let test_netlist_merge () =
  let a = C.Netlist.create [ r "r1" "x" "0" 1.0 ] in
  let b = C.Netlist.create [ r "r2" "x" "y" 2.0; r "r3" "y" "0" 3.0 ] in
  let m = C.Netlist.merge [ a; b ] in
  Alcotest.(check int) "3 elements" 3 (C.Netlist.element_count m);
  Alcotest.(check (list string)) "shared node x" [ "x"; "y" ]
    (C.Netlist.nodes m)

(* ------------------------------------------------------------------ *)
(* SPICE text *)

let test_parse_number () =
  let cases =
    [ ("10", 10.0); ("1k", 1000.0); ("10meg", 1.0e7); ("120f", 120.0e-15);
      ("0.18u", 0.18e-6); ("2n", 2.0e-9); ("1m", 1.0e-3); ("3p", 3.0e-12);
      ("1e-3", 1.0e-3); ("1.5e3", 1500.0); ("-5", -5.0) ]
  in
  List.iter
    (fun (s, expected) ->
      match C.Spice.parse_number s with
      | Some v -> check_close (Float.abs expected *. 1e-12 +. 1e-30) s expected v
      | None -> Alcotest.failf "failed to parse %s" s)
    cases;
  Alcotest.(check bool) "garbage" true (C.Spice.parse_number "xyz" = None)

let sample_deck =
  {|.title nmos test bench
* the paper's four-parallel-transistor measurement structure
.model nch nmos vt0=0.45 kp=300u gamma=0.45 phi=0.85 lambda=0.06 cdb=120f csb=200f
.model var1 varactor cmin=250f cmax=750f v0=0.45 vslope=0.35
Vdd vdd 0 DC 1.8
Vg g 0 DC 1.0
Vsub sub 0 SIN(0 0.178 10meg) AC 1
Rd vdd d 400
Rsub sub bulk 652
M1 d g 0 bulk nch W=10u L=0.18u M=4
Y1 tank 0 var1 M=2
L1 tank d 2n
C1 tank 0 500f
|}

let test_spice_parse () =
  let nl = C.Spice.of_string sample_deck in
  Alcotest.(check string) "title" "nmos test bench" (C.Netlist.title nl);
  Alcotest.(check int) "elements" 9 (C.Netlist.element_count nl);
  (match C.Netlist.find nl "m1" with
   | C.Element.Mosfet { w; mult; model; _ } ->
     check_close 1e-12 "W" 10e-6 w;
     Alcotest.(check int) "M" 4 mult;
     check_close 1e-20 "cdb" 120e-15 model.M.cdb
   | _ -> Alcotest.fail "m1 not a mosfet");
  match C.Netlist.find nl "vsub" with
  | C.Element.Vsource { wave = W.Sin { amplitude; freq; _ }; ac_mag; _ } ->
    check_close 1e-9 "amplitude" 0.178 amplitude;
    check_close 1.0 "freq" 10e6 freq;
    check_float "ac mag" 1.0 ac_mag
  | _ -> Alcotest.fail "vsub not parsed"

let test_spice_roundtrip () =
  let nl = C.Spice.of_string sample_deck in
  let nl2 = C.Spice.of_string (C.Spice.to_string nl) in
  Alcotest.(check int) "element count preserved"
    (C.Netlist.element_count nl) (C.Netlist.element_count nl2);
  Alcotest.(check (list string)) "nodes preserved" (C.Netlist.nodes nl)
    (C.Netlist.nodes nl2)

let test_spice_continuation () =
  let deck = ".title c\nR1 a 0\n+ 1k\n" in
  let nl = C.Spice.of_string deck in
  match C.Netlist.find nl "r1" with
  | C.Element.Resistor { ohms; _ } -> check_float "1k" 1000.0 ohms
  | _ -> Alcotest.fail "r1 missing"

let test_spice_errors () =
  let fails deck =
    match C.Spice.of_string deck with
    | exception C.Spice.Parse_error _ -> ()
    | exception C.Netlist.Invalid _ -> ()
    | _ -> Alcotest.failf "expected failure for %S" deck
  in
  fails "R1 a 0 notanumber\n";
  fails "M1 d g s b nosuchmodel W=1u L=1u\n";
  fails ".model m1 diode is=1\n";
  fails "V1 a 0 SIN(1 2)\n"

let test_spice_pragmas () =
  let deck =
    ".title t\n\
     *%snoise ignore dangling-node probe\n\
     %snoise ignore extreme-value\n\
     r1 a 0 1k\n"
  in
  let nl = C.Spice.of_string ~file:"t.sp" deck in
  (match C.Netlist.pragmas nl with
   | [ p1; p2 ] ->
     Alcotest.(check string) "code 1" "dangling-node" p1.C.Netlist.ignore_code;
     Alcotest.(check (option string)) "subject 1" (Some "probe")
       p1.C.Netlist.ignore_subject;
     Alcotest.(check string) "code 2" "extreme-value" p2.C.Netlist.ignore_code;
     Alcotest.(check (option string)) "subject 2" None
       p2.C.Netlist.ignore_subject
   | ps -> Alcotest.failf "expected 2 pragmas, got %d" (List.length ps));
  (match C.Netlist.element_loc nl "r1" with
   | Some l ->
     Alcotest.(check string) "file" "t.sp" l.C.Netlist.file;
     Alcotest.(check int) "line" 4 l.C.Netlist.line
   | None -> Alcotest.fail "r1 has no source location");
  (* pragmas survive the SPICE round trip *)
  let nl2 = C.Spice.of_string (C.Spice.to_string nl) in
  Alcotest.(check int) "roundtrip pragmas" 2
    (List.length (C.Netlist.pragmas nl2));
  (* a %snoise line with an unknown verb is a parse error, not a
     silently-ignored comment *)
  match C.Spice.of_string "*%snoise frobnicate x\nr1 a 0 1k\n" with
  | exception C.Spice.Parse_error _ -> ()
  | _ -> Alcotest.fail "bad pragma accepted"

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "circuit.waveform",
      [
        Alcotest.test_case "sin" `Quick test_sin_wave;
        Alcotest.test_case "pulse" `Quick test_pulse_wave;
        Alcotest.test_case "pwl" `Quick test_pwl_wave;
      ] );
    ( "circuit.mos",
      [
        Alcotest.test_case "cutoff" `Quick test_mos_cutoff;
        Alcotest.test_case "saturation square law" `Quick test_mos_saturation;
        Alcotest.test_case "triode" `Quick test_mos_triode;
        Alcotest.test_case "body effect" `Quick test_mos_body_effect;
        Alcotest.test_case "gmb is dId/dVbs" `Quick test_mos_gmb_derivative;
        Alcotest.test_case "gm and gds derivatives" `Quick
          test_mos_gm_gds_derivatives;
        Alcotest.test_case "invalid geometry" `Quick test_mos_invalid_geometry;
      ] );
    ( "circuit.varactor",
      [
        Alcotest.test_case "C limits" `Quick test_varactor_limits;
        Alcotest.test_case "charge consistency" `Quick
          test_varactor_charge_consistent;
        Alcotest.test_case "sensitivity peak" `Quick
          test_varactor_sensitivity_peak;
        qcheck prop_varactor_charge_monotone;
      ] );
    ( "circuit.netlist",
      [
        Alcotest.test_case "validation rules" `Quick test_netlist_rules;
        Alcotest.test_case "queries" `Quick test_netlist_queries;
        Alcotest.test_case "merge" `Quick test_netlist_merge;
      ] );
    ( "circuit.spice",
      [
        Alcotest.test_case "number suffixes" `Quick test_parse_number;
        Alcotest.test_case "parse deck" `Quick test_spice_parse;
        Alcotest.test_case "round trip" `Quick test_spice_roundtrip;
        Alcotest.test_case "continuation lines" `Quick test_spice_continuation;
        Alcotest.test_case "parse errors" `Quick test_spice_errors;
        Alcotest.test_case "pragmas and locations" `Quick test_spice_pragmas;
      ] );
  ]
