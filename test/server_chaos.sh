#!/bin/sh
# Wire-level chaos harness for the resident service.
#
# For each server-side SNOISE_FAULT injection point — kill the worker
# mid-request, delay a reply, garble a reply, drop a connection — run a
# scripted session and prove the resilience contract: after any
# injected fault, a re-issued request returns a result identical to an
# unfaulted baseline run.  The kill leg runs under `snoise serve
# --supervise` with a warmup journal and additionally asserts that the
# supervised worker restarted (health.restarts >= 1) and came back with
# the journaled plan already warm.
#
# Run from the repo root after `dune build`:
#   sh test/server_chaos.sh
# The snoise binary can be overridden with $SNOISE.
set -eu

SNOISE="${SNOISE:-_build/default/bin/snoise_cli.exe}"
OUT="${TMPDIR:-/tmp}/snoise-chaos-$$"
mkdir -p "$OUT"

SERVER=""
cleanup() {
  rm -rf "$OUT"
  [ -n "$SERVER" ] && kill "$SERVER" 2> /dev/null || true
}
trap cleanup EXIT

REQ='{"id": 1, "verb": "op", "deck_path": "test/decks/clean_rc.sp"}'

req() { "$SNOISE" request --socket "$SOCK" --wait 15 "$@"; }

stop_server() {
  req '{"id": 99, "verb": "shutdown"}' > /dev/null
  wait "$SERVER"
  SERVER=""
}

same_result() {
  python3 - "$1" "$2" << 'EOF'
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
assert a["type"] == "response", a
assert b["type"] == "response", b
da = json.dumps(a["result"], sort_keys=True)
db = json.dumps(b["result"], sort_keys=True)
assert da == db, "results differ:\n%s\n%s" % (da, db)
EOF
}

echo "== baseline (no fault injected)"
SOCK="$OUT/base.sock"
"$SNOISE" serve --socket "$SOCK" &
SERVER=$!
req "$REQ" > "$OUT/baseline.json"
stop_server

echo "== server-kill: supervised worker dies mid-request, restarts warm"
SOCK="$OUT/kill.sock"
JOURNAL="$OUT/kill.journal"
# first request primes the cache and the journal; the second is killed
SNOISE_FAULT=server-kill:2 \
  "$SNOISE" serve --supervise --socket "$SOCK" --warmup-journal "$JOURNAL" &
SERVER=$!
req "$REQ" > "$OUT/kill-prime.json"
same_result "$OUT/baseline.json" "$OUT/kill-prime.json"
set +e
req "$REQ" > "$OUT/kill-blip.json" 2> /dev/null
rc=$?
set -e
[ "$rc" -eq 2 ] || { echo "expected the killed worker to close the connection (exit 2), got $rc"; exit 1; }
# the supervisor restarts the worker; the re-issued request must be
# byte-identical to the unfaulted baseline, served from the journaled
# plan, on a worker that reports its restart
req "$REQ" > "$OUT/kill-retry.json"
same_result "$OUT/baseline.json" "$OUT/kill-retry.json"
req '{"id": 2, "verb": "health"}' > "$OUT/kill-health.json"
python3 - "$OUT/kill-retry.json" "$OUT/kill-health.json" << 'EOF'
import json, sys
retry = json.load(open(sys.argv[1]))
health = json.load(open(sys.argv[2]))
assert retry["served"]["plan"] == "hit", \
    "restarted worker served cold: %s" % retry["served"]
assert health["result"]["restarts"] >= 1, health["result"]
EOF
stop_server

echo "== server-delay: a delayed reply is still the right reply"
SOCK="$OUT/delay.sock"
SNOISE_FAULT=server-delay:1 "$SNOISE" serve --socket "$SOCK" &
SERVER=$!
req "$REQ" > "$OUT/delay.json"
same_result "$OUT/baseline.json" "$OUT/delay.json"
req "$REQ" > "$OUT/delay-retry.json"
same_result "$OUT/baseline.json" "$OUT/delay-retry.json"
stop_server

echo "== server-garble: a corrupted reply fails the client; the retry is clean"
SOCK="$OUT/garble.sock"
SNOISE_FAULT=server-garble:1 "$SNOISE" serve --socket "$SOCK" &
SERVER=$!
set +e
req "$REQ" > "$OUT/garble-blip.json" 2> /dev/null
rc=$?
set -e
[ "$rc" -eq 1 ] || { echo "expected the garbled reply to fail the client (exit 1), got $rc"; exit 1; }
req "$REQ" > "$OUT/garble-retry.json"
same_result "$OUT/baseline.json" "$OUT/garble-retry.json"
stop_server

echo "== server-drop: a dropped connection; the retry is clean"
SOCK="$OUT/drop.sock"
SNOISE_FAULT=server-drop:1 "$SNOISE" serve --socket "$SOCK" &
SERVER=$!
set +e
req "$REQ" > "$OUT/drop-blip.json" 2> /dev/null
rc=$?
set -e
[ "$rc" -eq 2 ] || { echo "expected the dropped connection to fail the client (exit 2), got $rc"; exit 1; }
req "$REQ" > "$OUT/drop-retry.json"
same_result "$OUT/baseline.json" "$OUT/drop-retry.json"
stop_server

echo "server chaos: ok"
