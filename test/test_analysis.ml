(* Structural ERC analyzer: rule behaviour, diagnostic ordering,
   pragma suppression, and — most importantly — soundness of the
   matching-based singularity prediction against the actual solver. *)

module C = Sn_circuit
module E = C.Element
module W = C.Waveform
module A = Sn_analysis
module Diag = Sn_engine.Diag
module Dc = Sn_engine.Dc

let r name n1 n2 ohms = E.Resistor { name; n1; n2; ohms }
let c name n1 n2 farads = E.Capacitor { name; n1; n2; farads }
let l name n1 n2 henries = E.Inductor { name; n1; n2; henries }

let v name np nn value =
  E.Vsource { name; np; nn; wave = W.dc value; ac_mag = 0.0 }

let i name np nn value =
  E.Isource { name; np; nn; wave = W.dc value; ac_mag = 0.0 }

let mos name d g s b =
  E.Mosfet
    { name; drain = d; gate = g; source = s; bulk = b;
      model = C.Mos_model.default_nmos; w = 10e-6; l = 0.18e-6; mult = 1 }

let analyze ?config nl = A.Analyzer.analyze ?config nl

let codes_of (ds : A.Rule.diagnostic list) =
  List.map (fun (d : A.Rule.diagnostic) -> d.A.Rule.code) ds
  |> List.sort_uniq String.compare

let has code ds = List.mem code (codes_of ds)

let check_has what code report =
  Alcotest.(check bool) what true (has code report.A.Analyzer.diagnostics)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* plain Newton only: no rescue rung may paper over a singularity the
   analyzer is supposed to predict *)
let singular_pivot_of nl =
  let options =
    { Dc.default_options with Dc.ladder = [ Diag.Plain_newton ] }
  in
  match Dc.solve ~options nl with
  | (_ : Dc.solution) -> None
  | exception Diag.Error (Diag.Singular_pivot { unknown; _ }) -> Some unknown
  | exception Diag.Error _ -> None

(* every unknown in every reported dependent group, by name *)
let structural_names nl =
  A.Structural.deficiencies (A.Rule.context nl)
  |> List.concat_map (fun (d : A.Structural.deficiency) ->
         List.map Diag.unknown_name d.A.Structural.group)
  |> List.sort_uniq String.compare

(* ------------------------------------------------------------------ *)
(* basic rules (ported from the old Circuit.Lint suite) *)

let test_clean_netlist () =
  let nl =
    C.Netlist.create
      [ v "v1" "in" "0" 1.0; r "r1" "in" "out" 1.0e3; r "r2" "out" "0" 1.0e3 ]
  in
  let report = analyze nl in
  Alcotest.(check int) "no diagnostics" 0
    (List.length report.A.Analyzer.diagnostics)

let test_dangling_node () =
  let nl = C.Netlist.create [ r "r1" "a" "0" 1.0e3; r "r2" "a" "b" 1.0e3 ] in
  let report = analyze nl in
  check_has "dangling b" "dangling-node" report;
  Alcotest.(check int) "warning only" 0
    (List.length (A.Analyzer.errors report))

let test_no_ground_path () =
  let nl =
    C.Netlist.create
      [ r "r1" "a" "0" 1.0e3; c "c1" "a" "x" 1e-12; r "r2" "x" "y" 1.0e3 ]
  in
  let errs = A.Analyzer.errors (analyze nl) in
  Alcotest.(check bool) "island reported" true (has "no-ground-path" errs);
  (* deterministic subject: the lexicographically smallest island node *)
  match
    List.find_opt
      (fun (d : A.Rule.diagnostic) -> d.A.Rule.code = "no-ground-path")
      errs
  with
  | Some d ->
    Alcotest.(check string) "subject" "x"
      (A.Rule.subject_name d.A.Rule.subject)
  | None -> Alcotest.fail "missing diagnostic"

let test_vsource_loop () =
  let nl =
    C.Netlist.create
      [ v "v1" "a" "0" 1.0; v "v2" "a" "0" 2.0; r "r1" "a" "0" 1.0 ]
  in
  Alcotest.(check bool) "loop reported" true
    (has "vsource-loop" (A.Analyzer.errors (analyze nl)))

let test_extreme_value () =
  let nl = C.Netlist.create [ r "r1" "a" "0" 1.0e12 ] in
  check_has "extreme R" "extreme-value" (analyze nl);
  (* geometry slips on devices too: W given as if in microns *)
  let nl =
    C.Netlist.create
      [ E.Mosfet
          { name = "m1"; drain = "d"; gate = "g"; source = "0"; bulk = "0";
            model = C.Mos_model.default_nmos; w = 10.0; l = 0.18e-6;
            mult = 1 };
        r "rd" "d" "0" 1e3; r "rg" "g" "0" 1e3 ]
  in
  check_has "extreme W" "extreme-value" (analyze nl)

let test_duplicate_element () =
  let nl =
    C.Netlist.create
      [ r "r1" "a" "0" 1.0e3; r "r1b" "a" "0" 1.0e3; v "v1" "a" "0" 1.0 ]
  in
  check_has "duplicate" "duplicate-element" (analyze nl);
  (* distinct values in parallel are a legitimate construction *)
  let nl =
    C.Netlist.create
      [ r "r1" "a" "0" 1.0e3; r "r2" "a" "0" 2.0e3; v "v1" "a" "0" 1.0 ]
  in
  Alcotest.(check bool) "parallel R ok" false
    (has "duplicate-element" (analyze nl).A.Analyzer.diagnostics)

let test_shorted_element () =
  let nl = C.Netlist.create [ r "r1" "a" "a" 1.0e3; r "r2" "a" "0" 1.0e3 ] in
  check_has "shorted R" "shorted-element" (analyze nl);
  (* 0 and gnd are one node, so spanning them is a short too *)
  let nl =
    C.Netlist.create [ r "r1" "gnd" "0" 1.0e3; r "r2" "a" "0" 1.0e3 ]
  in
  check_has "gnd-0 short" "shorted-element" (analyze nl)

let test_floating_gate_and_body () =
  let nl =
    C.Netlist.create [ mos "m1" "d" "g" "0" "b"; r "rd" "d" "0" 1.0e3 ]
  in
  let report = analyze nl in
  check_has "floating gate" "floating-gate" report;
  check_has "floating body" "floating-body" report;
  (* biasing both silences both *)
  let nl =
    C.Netlist.create
      [ mos "m1" "d" "g" "0" "b";
        r "rd" "d" "0" 1.0e3; v "vg" "g" "0" 1.0; r "rb" "b" "0" 1.0 ]
  in
  let ds = (analyze nl).A.Analyzer.diagnostics in
  Alcotest.(check bool) "gate ok" false (has "floating-gate" ds);
  Alcotest.(check bool) "body ok" false (has "floating-body" ds)

let test_isource_cutset () =
  let nl =
    C.Netlist.create
      [ i "i1" "a" "0" 1.0e-3; r "r1" "a" "b" 1.0e3; r "r2" "b" "a" 2.0e3;
        r "rg" "x" "0" 1.0e3 ]
  in
  let report = analyze nl in
  check_has "cutset" "isource-cutset" report;
  (* a warning, not an error: the gmin floor keeps the deck solvable *)
  Alcotest.(check bool) "cutset is a warning" true
    (List.exists
       (fun (d : A.Rule.diagnostic) -> d.A.Rule.code = "isource-cutset")
       (A.Analyzer.warnings report));
  (* with a resistive return path it stays quiet *)
  let nl =
    C.Netlist.create [ i "i1" "a" "0" 1.0e-3; r "r1" "a" "0" 1.0e3 ]
  in
  Alcotest.(check bool) "return path ok" false
    (has "isource-cutset" (analyze nl).A.Analyzer.diagnostics)

let test_unbound_port_and_untied_ring () =
  (* a substrate macromodel rendered alone: its ports touch nothing *)
  let nl =
    C.Netlist.create
      [ r "rsub_0" "gr" "0" 50.0; r "rsub_1" "gr" "sub_inject" 200.0;
        r "r1" "x" "0" 1.0 ]
  in
  check_has "unbound ports" "unbound-port" (analyze nl);
  (* bind the ring through a wire to ground: both rules go quiet *)
  let nl =
    C.Netlist.create
      [ r "rsub_0" "gr" "0" 50.0; r "rsub_1" "gr" "sub_inject" 200.0;
        r "itc_gr" "gr" "0" 0.5; v "vn" "sub_inject" "0" 1.0 ]
  in
  let ds = (analyze nl).A.Analyzer.diagnostics in
  Alcotest.(check bool) "bound ok" false (has "unbound-port" ds);
  Alcotest.(check bool) "tied ok" false (has "untied-ring" ds);
  (* bound only through a wire that itself floats: untied-ring *)
  let nl =
    C.Netlist.create
      [ r "rsub_0" "gr" "0" 50.0; r "itc_gr" "gr" "ring_island" 0.5;
        r "r1" "x" "0" 1.0 ]
  in
  check_has "untied ring" "untied-ring" (analyze nl);
  (* back-gate probes are observation-only and exempt *)
  let nl =
    C.Netlist.create [ r "rsub_0" "backgate:m1" "0" 50.0; r "r1" "x" "0" 1.0 ]
  in
  Alcotest.(check bool) "probe exempt" false
    (has "unbound-port" (analyze nl).A.Analyzer.diagnostics)

(* ------------------------------------------------------------------ *)
(* structural singularity prediction, cross-checked against the
   engine *)

let test_structural_vsource_clash () =
  let nl =
    C.Netlist.create
      [ v "v1" "in" "0" 1.0; v "v2" "in" "0" 2.0; r "r1" "in" "0" 1.0e3 ]
  in
  check_has "predicted" "structural-singular" (analyze nl);
  let names = structural_names nl in
  match singular_pivot_of nl with
  | Some (Some u) ->
    Alcotest.(check bool)
      (Printf.sprintf "solver pivot %s is in the dependent group"
         (Diag.unknown_name u))
      true
      (List.mem (Diag.unknown_name u) names)
  | _ -> Alcotest.fail "expected the solver to hit a singular pivot"

let test_structural_inductor_loop_dc_only () =
  let nl =
    C.Netlist.create
      [ v "v1" "in" "0" 1.0; l "l1" "in" "0" 1.0e-8; r "r1" "in" "0" 1.0e3 ]
  in
  (* the AC pattern is regular — the inductor branch row gains its
     jwL diagonal — so the deficiency is reported for DC alone *)
  (match A.Structural.deficiencies (A.Rule.context nl) with
   | [ d ] -> Alcotest.(check string) "dc only" "dc" d.A.Structural.analyses
   | ds -> Alcotest.failf "expected 1 deficiency, got %d" (List.length ds));
  (* and the DC solver indeed dies *)
  match singular_pivot_of nl with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a DC singular pivot"

let test_structural_self_loop () =
  (* a self-looped source: its branch row and column are structurally
     empty (the incidence entries cancel exactly as the numeric stamps
     do), singular at DC and AC *)
  let nl = C.Netlist.create [ v "v1" "a" "a" 1.0; r "r1" "a" "0" 1.0e3 ] in
  let report = analyze nl in
  check_has "predicted" "structural-singular" report;
  (match A.Structural.deficiencies (A.Rule.context nl) with
   | [ d ] ->
     Alcotest.(check string) "both analyses" "dc and ac"
       d.A.Structural.analyses;
     Alcotest.(check string) "names the branch" "v1"
       (Diag.unknown_name d.A.Structural.unknown)
   | ds -> Alcotest.failf "expected 1 deficiency, got %d" (List.length ds));
  match singular_pivot_of nl with
  | Some (Some u) ->
    Alcotest.(check string) "solver names it too" "v1" (Diag.unknown_name u)
  | _ -> Alcotest.fail "expected a singular pivot"

let test_matching_on_regular_pattern () =
  (* a healthy deck's patterns admit perfect matchings *)
  let nl =
    C.Netlist.create
      [ v "v1" "in" "0" 1.0; r "r1" "in" "out" 1.0e3; r "r2" "out" "0" 1.0e3;
        c "c1" "out" "0" 1e-12; l "l1" "in" "out" 1e-8 ]
  in
  let plan = Sn_engine.Stamp_plan.build (Sn_engine.Mna.build nl) in
  List.iter
    (fun pat ->
      let m = A.Structural.maximum_matching pat in
      Alcotest.(check int) "perfect"
        pat.Sn_engine.Stamp_plan.pat_dim m.A.Structural.size)
    [ Sn_engine.Stamp_plan.dc_pattern plan;
      Sn_engine.Stamp_plan.ac_pattern plan ]

(* ------------------------------------------------------------------ *)
(* report determinism and ordering (satellite: stable ordering) *)

let render (d : A.Rule.diagnostic) =
  Format.asprintf "%a" A.Rule.pp_diagnostic d

let messy_elements =
  [ r "rx" "a" "0" 1.0e12;
    v "v1" "b" "0" 1.0; v "v2" "b" "0" 2.0; r "rz" "b" "0" 1.0e3;
    r "rd" "b" "dang" 1.0e3 ]

let test_ordering_stable () =
  let report = analyze (C.Netlist.create messy_elements) in
  let ds = report.A.Analyzer.diagnostics in
  Alcotest.(check bool) "several findings" true (List.length ds >= 3);
  (* sorted by (severity, code, subject, message) *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      A.Rule.compare_diagnostic a b <= 0 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted ds);
  (* errors strictly precede warnings *)
  let sevs =
    List.map (fun (d : A.Rule.diagnostic) -> d.A.Rule.severity) ds
  in
  let rec no_error_after_warning seen_warning = function
    | [] -> true
    | A.Rule.Warning :: rest -> no_error_after_warning true rest
    | A.Rule.Error :: rest ->
      (not seen_warning) && no_error_after_warning seen_warning rest
  in
  Alcotest.(check bool) "errors first" true
    (no_error_after_warning false sevs);
  (* a second run renders identically *)
  let again = analyze (C.Netlist.create messy_elements) in
  Alcotest.(check (list string)) "deterministic" (List.map render ds)
    (List.map render again.A.Analyzer.diagnostics)

let test_ordering_permutation_invariant_codes () =
  (* element order must not change WHICH rules fire *)
  let a = analyze (C.Netlist.create messy_elements) in
  let b = analyze (C.Netlist.create (List.rev messy_elements)) in
  Alcotest.(check (list string)) "same codes"
    (codes_of a.A.Analyzer.diagnostics)
    (codes_of b.A.Analyzer.diagnostics)

(* ------------------------------------------------------------------ *)
(* suppression: pragmas and configuration *)

let probe_deck =
  "*%snoise ignore dangling-node probe\n\
   v1 in 0 1.0\n\
   r1 in mid 1k\n\
   r2 mid 0 1k\n\
   rp mid probe 10k\n"

let test_pragma_suppression () =
  let nl = C.Spice.of_string probe_deck in
  let report = analyze nl in
  Alcotest.(check int) "clean" 0 (List.length report.A.Analyzer.diagnostics);
  Alcotest.(check int) "one suppressed" 1 report.A.Analyzer.suppressed;
  (* pragmas can be turned off *)
  let config = { A.Analyzer.default with A.Analyzer.use_pragmas = false } in
  check_has "resurfaces" "dangling-node" (analyze ~config nl)

let test_config_suppression () =
  let nl =
    C.Netlist.create [ r "r1" "a" "0" 1.0e3; r "r2" "a" "b" 1.0e3 ]
  in
  (* subject-scoped ignore *)
  let config =
    { A.Analyzer.default with
      A.Analyzer.ignores = [ ("dangling-node", Some "b") ] }
  in
  let report = analyze ~config nl in
  Alcotest.(check int) "ignored" 0 (List.length report.A.Analyzer.diagnostics);
  Alcotest.(check int) "counted" 1 report.A.Analyzer.suppressed;
  (* a mismatching subject does not suppress *)
  let config =
    { A.Analyzer.default with
      A.Analyzer.ignores = [ ("dangling-node", Some "zz") ] }
  in
  check_has "kept" "dangling-node" (analyze ~config nl);
  (* disabling skips the rule without counting suppressions *)
  let config =
    { A.Analyzer.default with A.Analyzer.disabled = [ "dangling-node" ] }
  in
  let report = analyze ~config nl in
  Alcotest.(check int) "disabled" 0
    (List.length report.A.Analyzer.diagnostics);
  Alcotest.(check int) "not counted" 0 report.A.Analyzer.suppressed

let test_unknown_pragma () =
  let nl = C.Spice.of_string "*%snoise ignore no-such-rule\nr1 a 0 1k\n" in
  check_has "typo flagged" "unknown-pragma" (analyze nl)

let test_pragma_multi_code () =
  (* one marker line, a comma-separated code list, no subject: both
     rules are suppressed by the same pragma line *)
  let deck =
    "*%snoise ignore dangling-node,extreme-value\n\
     v1 in 0 1.0\n\
     r1 in mid 1k\n\
     r2 mid 0 1k\n\
     rp mid probe 10k\n\
     cx mid 0 1e-21\n"
  in
  let nl = C.Spice.of_string deck in
  let ps = C.Netlist.pragmas nl in
  Alcotest.(check int) "one line, two pragmas" 2 (List.length ps);
  List.iter
    (fun (p : C.Netlist.pragma) ->
      match p.C.Netlist.ignore_loc with
      | Some { C.Netlist.line = 1; _ } -> ()
      | _ -> Alcotest.fail "pragma loc is not deck line 1")
    ps;
  let report = analyze nl in
  Alcotest.(check int) "both findings suppressed" 0
    (List.length report.A.Analyzer.diagnostics);
  Alcotest.(check int) "both counted" 2 report.A.Analyzer.suppressed;
  (* with pragmas off, both codes resurface *)
  let config = { A.Analyzer.default with A.Analyzer.use_pragmas = false } in
  let report = analyze ~config nl in
  check_has "dangling-node resurfaces" "dangling-node" report;
  check_has "extreme-value resurfaces" "extreme-value" report

let test_unknown_pragma_loc () =
  (* the diagnostic points at the pragma's own deck line, not at any
     element *)
  let nl =
    C.Spice.of_string "r1 a 0 1k\nr2 a 0 1k\n*%snoise ignore no-such-rule r1\n"
  in
  let report = analyze nl in
  match
    List.find_opt
      (fun (d : A.Rule.diagnostic) -> d.A.Rule.code = "unknown-pragma")
      report.A.Analyzer.diagnostics
  with
  | None -> Alcotest.fail "unknown-pragma did not fire"
  | Some d -> (
    match d.A.Rule.loc with
    | Some { C.Netlist.file = "<string>"; line = 3 } -> ()
    | Some { C.Netlist.file; line } ->
      Alcotest.failf "diagnostic points at %s:%d, expected <string>:3" file
        line
    | None -> Alcotest.fail "unknown-pragma carries no location")

let test_numeric_rule_suppression () =
  (* the numeric rules honour the same suppression machinery as the
     structural ones *)
  let nonpassive =
    C.Netlist.create
      [ v "v1" "p" "0" 1.0; r "rn" "p" "0" (-0.5); r "rq" "p" "0" 1.0 ]
  in
  check_has "non-passive-pool fires" "non-passive-pool" (analyze nonpassive);
  let config =
    { A.Analyzer.default with
      A.Analyzer.ignores = [ ("non-passive-pool", None) ] }
  in
  let report = analyze ~config nonpassive in
  Alcotest.(check bool) "non-passive-pool suppressed" false
    (has "non-passive-pool" report.A.Analyzer.diagnostics);
  Alcotest.(check bool) "suppression counted" true
    (report.A.Analyzer.suppressed >= 1);
  (* subject-scoped: conditioning-span is ignored only on its node *)
  let illcond =
    C.Netlist.create
      [ i "i1" "0" "a" 1.0e-3; r "rbig" "a" "b" 1.0e-20; r "r2" "b" "0" 1.0 ]
  in
  check_has "conditioning-span fires" "conditioning-span" (analyze illcond);
  let config =
    { A.Analyzer.default with
      A.Analyzer.ignores = [ ("conditioning-span", Some "b") ] }
  in
  Alcotest.(check bool) "scoped ignore suppresses" false
    (has "conditioning-span" (analyze ~config illcond).A.Analyzer.diagnostics);
  let config =
    { A.Analyzer.default with
      A.Analyzer.ignores = [ ("conditioning-span", Some "zz") ] }
  in
  check_has "mismatching subject keeps it" "conditioning-span"
    (analyze ~config illcond)

let test_extract_tile_degenerate () =
  (* the docs/LINT.md minimal deck: four tiles, two substrate port
     nodes (gr and backgate:m1) *)
  let deck =
    "*%snoise extract tiles=2x2 grid=48x48\n\
     rsub_1 gr backgate:m1 350\n\
     rgr gr 0 1\n"
  in
  let nl = C.Spice.of_string deck in
  check_has "pigeonhole flagged" "extract-tile-degenerate" (analyze nl);
  (* more tiles than lateral grid cells *)
  let nl =
    C.Spice.of_string
      "*%snoise extract tiles=8x8 grid=4x4\nrsub_1 gr 0 350\n"
  in
  check_has "empty tiles flagged" "extract-tile-degenerate" (analyze nl);
  (* an unparsable tiles value must not pass silently *)
  let nl =
    C.Spice.of_string "*%snoise extract tiles=wide\nrsub_1 gr 0 350\n"
  in
  check_has "parse failure flagged" "extract-tile-degenerate" (analyze nl);
  (* a sound configuration stays silent *)
  let nl =
    C.Spice.of_string
      "*%snoise extract tiles=1x2 grid=48x48\n\
       rsub_1 gr backgate:m1 350\n\
       rgr gr 0 1\n"
  in
  Alcotest.(check bool)
    "sound config silent" false
    (has "extract-tile-degenerate" (analyze nl).A.Analyzer.diagnostics);
  (* directives survive a serialization round trip *)
  let nl = C.Spice.of_string deck in
  let nl' = C.Spice.of_string (C.Spice.to_string nl) in
  Alcotest.(check bool)
    "directive round-trips" true
    (C.Netlist.directives nl' = C.Netlist.directives nl
    && C.Netlist.directives nl
       = [ { C.Netlist.verb = "extract";
             args = [ ("tiles", "2x2"); ("grid", "48x48") ] } ]);
  check_has "round-tripped deck still flagged" "extract-tile-degenerate"
    (analyze nl')

(* ------------------------------------------------------------------ *)
(* JSON output *)

let test_json_shape () =
  let nl = C.Netlist.create [ r "r1" "a" "0" 1.0e3; r "r2" "a" "b" 1.0e3 ] in
  let s = A.Analyzer.to_json (analyze nl) in
  List.iter
    (fun key ->
      Alcotest.(check bool) ("has " ^ key) true (contains_sub s key))
    [ "\"tool\": \"snoise lint\""; "\"version\""; "\"errors\": 0";
      "\"warnings\""; "\"suppressed\": 0"; "\"diagnostics\"";
      "\"code\": \"dangling-node\""; "\"subject_kind\": \"node\"";
      "\"subject\": \"b\""; "\"severity\": \"warning\"" ];
  let count ch = String.fold_left (fun n c -> if c = ch then n + 1 else n) 0 s in
  Alcotest.(check int) "balanced braces" (count '{') (count '}');
  Alcotest.(check int) "balanced brackets" (count '[') (count ']')

(* ------------------------------------------------------------------ *)
(* registry hygiene *)

let test_registry () =
  let codes = A.Rules.codes in
  Alcotest.(check (list string)) "sorted by code"
    (List.sort String.compare codes) codes;
  Alcotest.(check int) "unique"
    (List.length codes)
    (List.length (List.sort_uniq String.compare codes));
  List.iter
    (fun code ->
      match A.Rules.find code with
      | Some rule -> Alcotest.(check string) "find" code rule.A.Rule.code
      | None -> Alcotest.failf "find %s failed" code)
    codes;
  Alcotest.(check bool) "unknown code" true
    (Option.is_none (A.Rules.find "no-such-rule"))

(* ------------------------------------------------------------------ *)
(* deck sweep: the acceptance criterion, executable.  For every deck
   in the test and example deck directories: a deck the solver
   rejects with a singular pivot must carry a diagnostic naming that
   unknown — an error for structural singularities, or a
   conditioning-span warning for numeric ones (a warning because the
   gmin rescue ladder usually recovers those; the sweep solves
   plain-Newton-only, so the prediction is still exercised); a deck
   that simulates must carry no error at all. *)

let deck_dirs = [ "decks"; Filename.concat ".." "examples/decks" ]

let all_decks () =
  List.concat_map
    (fun dir ->
      if Sys.file_exists dir && Sys.is_directory dir then
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".sp")
        |> List.map (Filename.concat dir)
        |> List.sort String.compare
      else [])
    deck_dirs

let test_deck_sweep () =
  let decks = all_decks () in
  Alcotest.(check bool) "found the deck corpus" true (List.length decks >= 4);
  List.iter
    (fun path ->
      let nl = C.Spice.load path in
      let report = analyze nl in
      let errs = A.Analyzer.errors report in
      let spans =
        List.filter
          (fun (d : A.Rule.diagnostic) -> d.A.Rule.code = "conditioning-span")
          report.A.Analyzer.diagnostics
      in
      match singular_pivot_of nl with
      | Some unknown ->
        if errs = [] && spans = [] then
          Alcotest.failf "%s: solver hit a singular pivot but lint is clean"
            path;
        (match unknown with
         | None -> ()
         | Some u ->
           let n = Diag.unknown_name u in
           let named =
             List.mem n (structural_names nl)
             || List.exists
                  (fun (d : A.Rule.diagnostic) ->
                    A.Rule.subject_name d.A.Rule.subject = n)
                  (errs @ spans)
           in
           if not named then
             Alcotest.failf "%s: pivot %s not named by any diagnostic" path n)
      | None ->
        (* non-passive-pool is the one error whose failure mode is not
           a DC singularity: an indefinite pencil factorizes fine but
           pumps energy in AC/transient, so the deck "simulates" here *)
        List.iter
          (fun (d : A.Rule.diagnostic) ->
            if d.A.Rule.code <> "non-passive-pool" then
              Alcotest.failf "%s simulates but lints with an error: %s" path
                (render d))
          errs)
    decks

let test_probe_deck_lints_clean () =
  let path = Filename.concat ".." "examples/decks/probe_divider.sp" in
  if Sys.file_exists path then begin
    let report = analyze (C.Spice.load path) in
    Alcotest.(check int) "clean" 0
      (List.length report.A.Analyzer.diagnostics);
    Alcotest.(check int) "suppressed" 1 report.A.Analyzer.suppressed
  end

(* ------------------------------------------------------------------ *)
(* the merged VCO impact model: error-free, and the merge layer
   really uses the name prefixes the port-binding rules key on *)

let test_merged_vco_clean_and_contract () =
  let flow = Snoise.Flow.build_vco Sn_testchip.Vco_chip.default ~vtune:0.0 in
  let nl = Snoise.Flow.vco_merged flow in
  let report = analyze nl in
  List.iter
    (fun d -> Format.eprintf "%s@." (render d))
    (A.Analyzer.errors report);
  Alcotest.(check int) "no errors" 0 (List.length (A.Analyzer.errors report));
  let names = List.map E.name (C.Netlist.elements nl) in
  Alcotest.(check bool) "substrate prefix contract" true
    (List.exists A.Rules.is_substrate_element names);
  Alcotest.(check bool) "interconnect prefix contract" true
    (List.exists (has_prefix "itc_") names);
  let nodes = C.Netlist.nodes nl in
  Alcotest.(check bool) "probe port contract" true
    (List.exists (has_prefix A.Rules.probe_port_prefix) nodes)

(* ------------------------------------------------------------------ *)
(* QCheck soundness harness: on random small decks, a clean bill of
   health must never precede a singular pivot, and when the matching
   does report a deficiency the solver's pivot name must be inside
   the dependent group *)

let netlist_of_seed seed =
  let nodes = [| "0"; "a"; "b"; "c" |] in
  let build idx (k, a, b) =
    let n1 = nodes.(a mod Array.length nodes)
    and n2 = nodes.(b mod Array.length nodes) in
    match k mod 5 with
    | 0 -> r (Printf.sprintf "r%d" idx) n1 n2 1.0e3
    | 1 -> c (Printf.sprintf "c%d" idx) n1 n2 1.0e-12
    | 2 -> l (Printf.sprintf "l%d" idx) n1 n2 1.0e-8
    | 3 -> v (Printf.sprintf "v%d" idx) n1 n2 1.0
    | _ -> i (Printf.sprintf "i%d" idx) n1 n2 1.0e-3
  in
  C.Netlist.create (r "rground" "a" "0" 1.0e3 :: List.mapi build seed)

let prop_structural_soundness =
  QCheck.Test.make ~count:300
    ~name:"no clean lint report on a deck with a singular pivot"
    QCheck.(
      list_of_size (Gen.int_range 0 6)
        (triple small_nat small_nat small_nat))
    (fun seed ->
      let nl = netlist_of_seed seed in
      let errs = A.Analyzer.errors (analyze nl) in
      (* soundness: a deck the solver rejects with a singular pivot
         must never get a clean bill of health.  (The stronger
         same-unknown naming guarantee is asserted by the
         deterministic tests and the deck sweep: on random decks
         several singularities can overlap, and the numeric pivot may
         belong to a pattern-perfect one while the matching names
         another.) *)
      match singular_pivot_of nl with
      | None -> true
      | Some _ -> errs <> [])

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "analysis.rules",
      [
        Alcotest.test_case "clean netlist" `Quick test_clean_netlist;
        Alcotest.test_case "dangling node" `Quick test_dangling_node;
        Alcotest.test_case "no ground path" `Quick test_no_ground_path;
        Alcotest.test_case "vsource loop" `Quick test_vsource_loop;
        Alcotest.test_case "extreme value" `Quick test_extreme_value;
        Alcotest.test_case "duplicate element" `Quick test_duplicate_element;
        Alcotest.test_case "shorted element" `Quick test_shorted_element;
        Alcotest.test_case "floating gate and body" `Quick
          test_floating_gate_and_body;
        Alcotest.test_case "isource cutset" `Quick test_isource_cutset;
        Alcotest.test_case "unbound port / untied ring" `Quick
          test_unbound_port_and_untied_ring;
        Alcotest.test_case "registry" `Quick test_registry;
      ] );
    ( "analysis.structural",
      [
        Alcotest.test_case "vsource clash" `Quick
          test_structural_vsource_clash;
        Alcotest.test_case "inductor loop is DC-only" `Quick
          test_structural_inductor_loop_dc_only;
        Alcotest.test_case "self-looped source" `Quick
          test_structural_self_loop;
        Alcotest.test_case "regular pattern matches perfectly" `Quick
          test_matching_on_regular_pattern;
        qcheck prop_structural_soundness;
      ] );
    ( "analysis.report",
      [
        Alcotest.test_case "stable ordering" `Quick test_ordering_stable;
        Alcotest.test_case "permutation-invariant codes" `Quick
          test_ordering_permutation_invariant_codes;
        Alcotest.test_case "pragma suppression" `Quick
          test_pragma_suppression;
        Alcotest.test_case "config suppression" `Quick
          test_config_suppression;
        Alcotest.test_case "unknown pragma" `Quick test_unknown_pragma;
        Alcotest.test_case "multi-code pragma" `Quick test_pragma_multi_code;
        Alcotest.test_case "unknown pragma location" `Quick
          test_unknown_pragma_loc;
        Alcotest.test_case "numeric rule suppression" `Quick
          test_numeric_rule_suppression;
        Alcotest.test_case "extract tile degenerate" `Quick
          test_extract_tile_degenerate;
        Alcotest.test_case "json shape" `Quick test_json_shape;
      ] );
    ( "analysis.decks",
      [
        Alcotest.test_case "acceptance sweep" `Quick test_deck_sweep;
        Alcotest.test_case "probe deck lints clean" `Quick
          test_probe_deck_lints_clean;
        Alcotest.test_case "merged VCO is error-free (contract)" `Slow
          test_merged_vco_clean_and_contract;
      ] );
  ]
