(* Numerical pre-flight: predictive soundness of the static
   conditioning / stiffness analyses against the dynamic engine, the
   passivity-certificate lifecycle, and the verify surfaces (Flow
   preflight, plan-cache verification). *)

module C = Sn_circuit
module E = C.Element
module W = C.Waveform
module A = Sn_analysis
module Nu = A.Numeric
module N = Sn_numerics
module Diag = Sn_engine.Diag
module Dc = Sn_engine.Dc
module R = Snoise.Reduced_model

let r name n1 n2 ohms = E.Resistor { name; n1; n2; ohms }
let c name n1 n2 farads = E.Capacitor { name; n1; n2; farads }

let v name np nn value =
  E.Vsource { name; np; nn; wave = W.dc value; ac_mag = 0.0 }

let i name np nn value =
  E.Isource { name; np; nn; wave = W.dc value; ac_mag = 0.0 }

let ctx nl = A.Rule.context nl

(* plain Newton only: no rescue rung may paper over the singularity
   the pre-flight is supposed to predict *)
let singular_pivot_of nl =
  let options =
    { Dc.default_options with Dc.ladder = [ Diag.Plain_newton ] }
  in
  match Dc.solve ~options nl with
  | (_ : Dc.solution) -> None
  | exception Diag.Error (Diag.Singular_pivot { unknown; _ }) ->
    Option.map Diag.unknown_name unknown
  | exception Diag.Error _ -> None

(* ------------------------------------------------------------------ *)
(* conditioning: the static span names the node the LU pivot dies at *)

(* current drive on purpose: a voltage source's branch row provides
   pivot fill that can rescue the cancelled node, hiding exactly the
   failure the analysis predicts *)
let illcond_deck big =
  C.Netlist.create
    [ i "i1" "0" "a" 1.0e-3; r "rbig" "a" "b" (1.0 /. big); r "r2" "b" "0" 1.0 ]

let test_conditioning_predicts_pivot () =
  (* a suite of spans at and beyond the underflow point; every dynamic
     singular pivot must land on a statically named node, and at least
     one deck must actually fail dynamically (the property is not
     allowed to be vacuous) *)
  let dynamic_failures = ref 0 in
  List.iter
    (fun big ->
      let nl = illcond_deck big in
      let spans = Nu.conditioning (ctx nl) in
      Alcotest.(check bool)
        (Printf.sprintf "span flagged at %g" big)
        true (spans <> []);
      let static_nodes = List.map (fun s -> s.Nu.sp_node) spans in
      match singular_pivot_of nl with
      | None -> ()
      | Some unknown ->
        incr dynamic_failures;
        Alcotest.(check bool)
          (Printf.sprintf "static pass named %s (span %g)" unknown big)
          true
          (List.mem unknown static_nodes))
    [ 1.0e16; 1.0e17; 1.0e18; 1.0e20 ];
  Alcotest.(check bool)
    "at least one deck fails dynamically" true (!dynamic_failures > 0)

let test_conditioning_clean_deck_silent () =
  let nl =
    C.Netlist.create
      [ v "v1" "in" "0" 1.0; r "r1" "in" "out" 1.0e3; r "r2" "out" "0" 1.0e3 ]
  in
  Alcotest.(check int) "no spans" 0 (List.length (Nu.conditioning (ctx nl)))

(* ------------------------------------------------------------------ *)
(* stiffness: the static ratio predicts transient step truncation and
   the suggested dt avoids it *)

let stiff_deck =
  C.Netlist.create
    [
      v "v1" "in" "0" 1.0;
      r "rfast" "in" "f" 1.0;
      c "cfast" "f" "0" 1.0e-15;
      r "rslow" "in" "s" 1.0e8;
      c "cslow" "s" "0" 1.0e-4;
    ]

let test_stiffness_names_extremes () =
  match Nu.stiffness (ctx stiff_deck) with
  | None -> Alcotest.fail "stiff deck has no stiffness estimate"
  | Some st ->
    Alcotest.(check string) "fast node" "f" st.Nu.st_fast_node;
    Alcotest.(check string) "slow node" "s" st.Nu.st_slow_node;
    Alcotest.(check bool)
      "ratio beyond the limit" true
      (st.Nu.st_ratio > Nu.stiffness_limit);
    Alcotest.(check bool)
      "rule fires on the fast node" true
      (List.exists
         (fun (d : A.Rule.diagnostic) ->
           d.A.Rule.code = "stiff-transient"
           && d.A.Rule.subject = A.Rule.Node "f")
         (A.Analyzer.analyze stiff_deck).A.Analyzer.diagnostics)

let test_stiffness_dt_bound_sound () =
  (* integrating at the suggested bound resolves the fast mode: the
     fast node must settle to the divider value within a few tau *)
  match Nu.stiffness (ctx stiff_deck) with
  | None -> Alcotest.fail "no stiffness estimate"
  | Some st ->
    let module T = Sn_engine.Tran in
    (* start from 0 V so the fast mode actually has to settle *)
    let options = { T.default_options with T.ic = T.Uic [] } in
    let ds =
      T.simulate ~options ~tstop:(20.0 *. st.Nu.st_fast_tau) ~dt:st.Nu.st_dt
        stiff_deck
    in
    Alcotest.(check bool) "untruncated at suggested dt" true
      (ds.T.truncated = None);
    let wave = T.node ds "f" in
    let vf = wave.(Array.length wave - 1) in
    Alcotest.(check bool)
      (Printf.sprintf "fast node settled (v = %g)" vf)
      true
      (Float.abs (vf -. 1.0) < 1.0e-3)

(* ------------------------------------------------------------------ *)
(* passivity certificates: QCheck — a randomly de-passivated pencil
   never earns a certificate, and a certificate never transfers *)

let random_psd st n =
  let a =
    N.Mat.init n n (fun _ _ -> QCheck.Gen.float_range (-2.0) 2.0 st)
  in
  (* A Aᵀ + eps I: PSD with a definite margin *)
  let m = N.Mat.mul a (N.Mat.transpose a) in
  for i = 0 to n - 1 do
    N.Mat.set m i i (N.Mat.get m i i +. 1.0e-6)
  done;
  m

let depassivate st m =
  let n = N.Mat.rows m in
  let k = QCheck.Gen.int_range 0 (n - 1) st in
  let trace = ref 0.0 in
  for i = 0 to n - 1 do
    trace := !trace +. N.Mat.get m i i
  done;
  let m' = N.Mat.init n n (fun i j -> N.Mat.get m i j) in
  N.Mat.set m' k k (N.Mat.get m k k -. (2.0 *. Float.max !trace 1.0));
  m'

let prop_no_certificate_for_depassivated =
  QCheck.Test.make ~count:200
    ~name:"depassivated pencil never certifies; certificates don't transfer"
    QCheck.(make Gen.(pair (int_range 2 8) (int_bound 1_000_000)))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; n |] in
      let m = random_psd st n in
      let bad = depassivate st m in
      match N.Passivity.certify ~context:"qcheck" m with
      | None -> false (* a PSD matrix with margin must certify *)
      | Some cert ->
        N.Passivity.certify ~context:"qcheck" bad = None
        && N.Passivity.verify ~context:"qcheck" m cert
        && not (N.Passivity.verify ~context:"qcheck" bad cert)
        && not (N.Passivity.verify ~context:"other" m cert))

(* ------------------------------------------------------------------ *)
(* reduced-model certificates ride the deck rewrite *)

let ladder_deck =
  (* a passive ladder with internal nodes for the reduction to
     eliminate; i1/o1 stay as ports via the active elements *)
  C.Netlist.create
    [
      v "v1" "i1" "0" 1.0;
      r "rl" "o1" "0" 50.0;
      r "p1" "i1" "m1" 10.0;
      c "pc1" "m1" "0" 1.0e-12;
      r "p2" "m1" "m2" 10.0;
      c "pc2" "m2" "0" 1.0e-12;
      r "p3" "m2" "o1" 10.0;
    ]

let reduce_config = { R.default_config with R.order = R.Fixed 1 }

let test_reduce_deck_certified () =
  match R.reduce_deck_certified ~config:reduce_config ladder_deck with
  | _, None -> Alcotest.fail "ladder deck did not reduce"
  | nl', Some (model, cert) ->
    Alcotest.(check bool) "rewrite happened" true (nl' != ladder_deck);
    (match cert with
    | None -> Alcotest.fail "healthy reduction must certify"
    | Some cert ->
      Alcotest.(check bool) "certificate verifies" true
        (R.verify_certificate model cert);
      (* a certificate from a different model must not transfer *)
      let other_deck =
        C.Netlist.create
          (C.Netlist.elements ladder_deck
          |> List.map (function
               | E.Resistor ({ name = "p2"; _ } as rr) ->
                 E.Resistor { rr with ohms = 11.0 }
               | e -> e))
      in
      (match R.reduce_deck_certified ~config:reduce_config other_deck with
      | _, Some (other, _) ->
        Alcotest.(check bool) "no cross-model verification" false
          (R.verify_certificate other cert)
      | _ -> Alcotest.fail "perturbed deck did not reduce"))

(* ------------------------------------------------------------------ *)
(* Flow.preflight: the verify gate end to end *)

let test_preflight_clean () =
  let nl =
    C.Netlist.create
      [ v "v1" "in" "0" 1.0; r "r1" "in" "out" 1.0e3; r "r2" "out" "0" 1.0e3 ]
  in
  let p = Snoise.Flow.preflight nl in
  Alcotest.(check bool) "not failing" false (Snoise.Flow.preflight_failing p);
  Alcotest.(check int) "no spans" 0 (List.length p.Snoise.Flow.pf_spans);
  Alcotest.(check int) "no pool defects" 0
    (List.length p.Snoise.Flow.pf_pool);
  Alcotest.(check bool) "no reduction configured" true
    (p.Snoise.Flow.pf_reduction = Snoise.Flow.Not_reduced)

let test_preflight_fails_on_warning () =
  let p = Snoise.Flow.preflight (illcond_deck 1.0e20) in
  Alcotest.(check bool) "warnings refuse verify" true
    (Snoise.Flow.preflight_failing p)

let test_preflight_reduction_certified () =
  Snoise.Flow.set_default_reduction (Some reduce_config);
  Fun.protect
    ~finally:(fun () -> Snoise.Flow.set_default_reduction None)
    (fun () ->
      let p = Snoise.Flow.preflight ladder_deck in
      Alcotest.(check bool) "reduction certified" true
        (p.Snoise.Flow.pf_reduction = Snoise.Flow.Certified))

(* ------------------------------------------------------------------ *)
(* non-passive pool: static error names the offending node *)

let test_pool_defect_named () =
  let nl =
    C.Netlist.create
      [
        v "v1" "p" "0" 1.0;
        r "red_g0" "p" "0" (-0.5);
        r "red_g1" "p" "x" 1.0;
        r "red_g2" "x" "0" 1.0;
      ]
  in
  match Nu.pool_passivity (ctx nl) with
  | [] -> Alcotest.fail "indefinite pool not detected"
  | d :: _ ->
    Alcotest.(check string) "worst pivot at p" "p" d.Nu.pd_node;
    Alcotest.(check bool) "conductance pencil" true
      (d.Nu.pd_pencil = `Conductance);
    let report = A.Analyzer.analyze nl in
    Alcotest.(check bool) "non-passive-pool is error severity" true
      (List.exists
         (fun (d : A.Rule.diagnostic) -> d.A.Rule.code = "non-passive-pool")
         (A.Analyzer.errors report))

let suites =
  [
    ( "preflight.conditioning",
      [
        Alcotest.test_case "predicts the singular pivot" `Quick
          test_conditioning_predicts_pivot;
        Alcotest.test_case "clean deck is silent" `Quick
          test_conditioning_clean_deck_silent;
      ] );
    ( "preflight.stiffness",
      [
        Alcotest.test_case "names the extreme nodes" `Quick
          test_stiffness_names_extremes;
        Alcotest.test_case "suggested dt bound is sound" `Quick
          test_stiffness_dt_bound_sound;
      ] );
    ( "preflight.certificates",
      [
        QCheck_alcotest.to_alcotest prop_no_certificate_for_depassivated;
        Alcotest.test_case "reduce_deck_certified round trip" `Quick
          test_reduce_deck_certified;
      ] );
    ( "preflight.flow",
      [
        Alcotest.test_case "clean deck verifies" `Quick test_preflight_clean;
        Alcotest.test_case "warnings refuse" `Quick
          test_preflight_fails_on_warning;
        Alcotest.test_case "configured reduction certifies" `Quick
          test_preflight_reduction_certified;
        Alcotest.test_case "pool defect named" `Quick test_pool_defect_named;
      ] );
  ]
