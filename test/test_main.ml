let () =
  Alcotest.run "snoise"
    (Test_numerics.suites
     @ Test_geometry.suites
     @ Test_layout.suites
     @ Test_substrate.suites
     @ Test_circuit.suites
     @ Test_analysis.suites
     @ Test_preflight.suites
     @ Test_engine.suites
     @ Test_interconnect.suites
     @ Test_rf.suites
     @ Test_testchip.suites
     @ Test_oscillator.suites
     @ Test_pool.suites
     @ Test_reduce.suites
     @ Test_flow.suites
     @ Test_robustness.suites
     @ Test_server.suites)
