(* Tests for sn_tech and sn_substrate: the technology card, the FDM
   grid, and the macromodel physics (reciprocity, scaling laws,
   shielding). *)

module G = Sn_geometry
module N = Sn_numerics
module T = Sn_tech.Tech
module Port = Sn_substrate.Port
module Grid = Sn_substrate.Grid
module Extractor = Sn_substrate.Extractor
module Macromodel = Sn_substrate.Macromodel

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Tech *)

let test_tech_valid () =
  match T.validate T.imec018 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "imec018 invalid: %s" e

let test_tech_lookup () =
  let m1 = T.metal T.imec018 1 in
  Alcotest.(check bool) "m1 sheet R typical" true
    (m1.T.sheet_resistance > 0.01 && m1.T.sheet_resistance < 0.2);
  let m6 = T.metal T.imec018 6 in
  Alcotest.(check bool) "top metal thicker" true
    (m6.T.thickness > m1.T.thickness);
  Alcotest.check_raises "no metal 7"
    (T.Unknown_metal
       { tech = "imec-0.18um-1P6M-high-ohmic"; index = 7;
         available = [ 1; 2; 3; 4; 5; 6 ] })
    (fun () -> ignore (T.metal T.imec018 7))

let test_tech_bulk_resistivity () =
  (* the paper's substrate: 20 ohm cm = 0.2 ohm m bulk *)
  match T.imec018.T.substrate.T.layers with
  | _surface :: bulk :: _ -> check_float "20 ohm cm" 0.2 bulk.T.resistivity
  | _ -> Alcotest.fail "expected layered profile"

let test_wire_caps_positive () =
  for k = 1 to 6 do
    Alcotest.(check bool) "area cap > 0" true
      (T.wire_capacitance_per_area T.imec018 k > 0.0);
    Alcotest.(check bool) "fringe cap > 0" true
      (T.wire_fringe_per_length T.imec018 k > 0.0)
  done;
  (* higher metal is farther from substrate: smaller area capacitance *)
  Alcotest.(check bool) "m6 cap < m1 cap" true
    (T.wire_capacitance_per_area T.imec018 6
     < T.wire_capacitance_per_area T.imec018 1)

let test_tech_validation_catches () =
  let bad = { T.imec018 with T.metals = [] } in
  Alcotest.(check bool) "no metals rejected" true
    (Result.is_error (T.validate bad));
  let bad2 =
    { T.imec018 with
      T.substrate = { T.imec018.T.substrate with T.layers = [] } }
  in
  Alcotest.(check bool) "empty profile rejected" true
    (Result.is_error (T.validate bad2))

(* ------------------------------------------------------------------ *)
(* Grid *)

let die100 = G.Rect.make 0.0 0.0 100.0 100.0

let test_grid_dimensions () =
  let cfg = { Grid.nx = 10; ny = 20; z_per_layer = Some [ 1; 2; 2; 1 ] } in
  let g = Grid.build cfg ~die:die100 T.imec018.T.substrate in
  Alcotest.(check int) "nx" 10 (Grid.nx g);
  Alcotest.(check int) "ny" 20 (Grid.ny g);
  Alcotest.(check int) "nz" 6 (Grid.nz g);
  Alcotest.(check int) "cells" 1200 (Grid.cell_count g);
  check_float "dx" 1.0e-5 (Grid.dx g 0);
  check_float "dy" 5.0e-6 (Grid.dy g 0)

let test_grid_depth_preserved () =
  let g = Grid.build Grid.default_config ~die:die100 T.imec018.T.substrate in
  let total = ref 0.0 in
  for iz = 0 to Grid.nz g - 1 do
    total := !total +. Grid.dz g iz
  done;
  Alcotest.(check (float 1e-12)) "total depth"
    (T.substrate_depth T.imec018) !total

let test_grid_bad_config () =
  Alcotest.check_raises "nx = 0"
    (Invalid_argument "Grid.build: nx and ny must be >= 1") (fun () ->
      ignore
        (Grid.build { Grid.nx = 0; ny = 4; z_per_layer = None } ~die:die100
           T.imec018.T.substrate));
  Alcotest.check_raises "z mismatch"
    (Invalid_argument "Grid.build: z_per_layer length mismatch") (fun () ->
      ignore
        (Grid.build { Grid.nx = 4; ny = 4; z_per_layer = Some [ 1 ] }
           ~die:die100 T.imec018.T.substrate))

let test_grid_conductances_positive () =
  let cfg = { Grid.nx = 4; ny = 4; z_per_layer = Some [ 1; 1; 1; 1 ] } in
  let g = Grid.build cfg ~die:die100 T.imec018.T.substrate in
  let count = ref 0 in
  Grid.iter_conductances g (fun a b gv ->
      Alcotest.(check bool) "distinct cells" true (a <> b);
      Alcotest.(check bool) "positive conductance" true (gv > 0.0);
      incr count);
  (* 3 directions on a 4x4x4 grid: 3 * (3*4*4) pairs *)
  Alcotest.(check int) "pair count" 144 !count

let test_surface_cell_rect () =
  let cfg = { Grid.nx = 10; ny = 10; z_per_layer = None } in
  let g = Grid.build cfg ~die:die100 T.imec018.T.substrate in
  let r = Grid.surface_cell_rect g 0 0 in
  check_float "cell width" 10.0 (G.Rect.width r);
  let r99 = Grid.surface_cell_rect g 9 9 in
  check_float "last cell touches edge" 100.0 r99.G.Rect.x1

(* ------------------------------------------------------------------ *)
(* Ports *)

let test_port_of_layout () =
  let open Sn_layout in
  let cell =
    Cell.make ~name:"c"
      [
        Shape.rect ~layer:Layer.Substrate_contact ~net:"gnd"
          (G.Rect.make 0.0 0.0 1.0 1.0);
        Shape.rect ~layer:Layer.Substrate_contact ~net:"gnd"
          (G.Rect.make 5.0 0.0 6.0 1.0);
        Shape.rect ~layer:Layer.Substrate_contact ~net:"sub"
          (G.Rect.make 9.0 9.0 10.0 10.0);
        Shape.rect ~layer:Layer.Nwell ~net:"vdd" (G.Rect.make 2.0 2.0 4.0 4.0);
        Shape.rect ~layer:(Layer.Backgate_probe "m1") ~net:"-"
          (G.Rect.make 7.0 7.0 8.0 8.0);
        Shape.rect ~layer:(Layer.Metal 1) ~net:"gnd" (G.Rect.make 0.0 0.0 9.0 1.0);
      ]
  in
  let ports = Port.of_layout (Layout.create ~top:"c" [ cell ]) in
  let names = List.map (fun p -> p.Port.name) ports in
  Alcotest.(check (list string)) "port names"
    [ "backgate:m1"; "gnd"; "nwell:vdd"; "sub" ] names;
  let gnd = List.find (fun p -> p.Port.name = "gnd") ports in
  Alcotest.(check int) "gnd merges two rects" 2 (List.length gnd.Port.region);
  check_float "gnd area" 2.0 (Port.area gnd);
  let well = List.find (fun p -> p.Port.name = "nwell:vdd") ports in
  Alcotest.(check bool) "well kind" true (well.Port.kind = Port.Well)

let test_port_empty_region () =
  Alcotest.check_raises "empty region" (Invalid_argument "Port.v: empty region")
    (fun () -> ignore (Port.v ~name:"x" ~kind:Port.Resistive []))

(* ------------------------------------------------------------------ *)
(* Extraction physics *)

let fast_config = { Grid.nx = 24; ny = 24; z_per_layer = Some [ 1; 2; 2; 2 ] }

let two_contact_model ?(die = die100) ?(cfg = fast_config) ?(sep = 60.0) () =
  let a = Port.v ~name:"a" ~kind:Port.Resistive [ G.Rect.make 10.0 45.0 20.0 55.0 ] in
  let b =
    Port.v ~name:"b" ~kind:Port.Resistive
      [ G.Rect.make (10.0 +. sep) 45.0 (20.0 +. sep) 55.0 ]
  in
  Extractor.extract ~config:cfg ~tech:T.imec018 ~die [ a; b ]

let test_macromodel_symmetric () =
  let m = two_contact_model () in
  Alcotest.(check bool) "S symmetric" true
    (N.Mat.is_symmetric ~tol:1e-6 m.Macromodel.conductance)

let test_macromodel_row_sums_zero () =
  (* no global ground: the reduced network is a pure Laplacian *)
  let m = two_contact_model () in
  let s = m.Macromodel.conductance in
  for i = 0 to N.Mat.rows s - 1 do
    let sum = ref 0.0 in
    for j = 0 to N.Mat.cols s - 1 do
      sum := !sum +. N.Mat.get s i j
    done;
    Alcotest.(check bool) "row sum ~ 0" true
      (Float.abs !sum < 1e-6 *. N.Mat.get s i i)
  done

let test_two_contact_resistance_plausible () =
  let m = two_contact_model () in
  let r = Macromodel.coupling_resistance m "a" "b" in
  (* spreading resistance of two 10x10 um contacts 60 um apart in a
     20 ohm cm bulk: order 1-50 kohm *)
  Alcotest.(check bool)
    (Printf.sprintf "R = %g in plausible band" r)
    true
    (r > 200.0 && r < 100_000.0)

let test_resistance_increases_with_separation () =
  let r_near =
    Macromodel.coupling_resistance (two_contact_model ~sep:30.0 ()) "a" "b"
  in
  let r_far =
    Macromodel.coupling_resistance (two_contact_model ~sep:70.0 ()) "a" "b"
  in
  Alcotest.(check bool)
    (Printf.sprintf "R(30um)=%g < R(70um)=%g" r_near r_far)
    true (r_near < r_far)

let test_resistance_decreases_with_contact_area () =
  let model size =
    let a =
      Port.v ~name:"a" ~kind:Port.Resistive
        [ G.Rect.make 10.0 45.0 (10.0 +. size) (45.0 +. size) ]
    in
    let b =
      Port.v ~name:"b" ~kind:Port.Resistive
        [ G.Rect.make 70.0 45.0 (70.0 +. size) (45.0 +. size) ]
    in
    Extractor.extract ~config:fast_config ~tech:T.imec018 ~die:die100 [ a; b ]
  in
  let r_small = Macromodel.coupling_resistance (model 5.0) "a" "b" in
  let r_big = Macromodel.coupling_resistance (model 15.0) "a" "b" in
  Alcotest.(check bool)
    (Printf.sprintf "R(5um)=%g > R(15um)=%g" r_small r_big)
    true (r_small > r_big)

let test_divider_reciprocity () =
  let m = two_contact_model () in
  (* with only two ports and nothing grounded the sense port floats at
     the injected potential *)
  let d = Macromodel.divider m ~inject:"a" ~sense:"b" ~grounded:[] in
  Alcotest.(check (float 1e-5)) "floating two-port divider is 1" 1.0 d

let test_guard_ring_shields () =
  (* a grounded ring between injector and sensor must reduce coupling *)
  let inject = Port.v ~name:"inj" ~kind:Port.Resistive
      [ G.Rect.make 5.0 45.0 15.0 55.0 ] in
  let sense = Port.v ~name:"sns" ~kind:Port.Probe
      [ G.Rect.make 80.0 45.0 90.0 55.0 ] in
  let ring_rects =
    [ G.Rect.make 45.0 20.0 50.0 80.0 ]
  in
  let ring = Port.v ~name:"ring" ~kind:Port.Resistive ring_rects in
  let bare =
    Extractor.extract ~config:fast_config ~tech:T.imec018 ~die:die100
      [ inject; sense ]
  in
  let shielded =
    Extractor.extract ~config:fast_config ~tech:T.imec018 ~die:die100
      [ inject; sense; ring ]
  in
  let d_bare = Macromodel.divider bare ~inject:"inj" ~sense:"sns" ~grounded:[] in
  let d_shield =
    Macromodel.divider shielded ~inject:"inj" ~sense:"sns" ~grounded:[ "ring" ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "shielded %g << bare %g" d_shield d_bare)
    true
    (d_shield < 0.3 *. d_bare)

let test_well_capacitance_reported () =
  let well =
    Port.v ~name:"nwell:vdd" ~kind:Port.Well [ G.Rect.make 40.0 40.0 60.0 60.0 ]
  in
  let tap = Port.v ~name:"gnd" ~kind:Port.Resistive
      [ G.Rect.make 5.0 5.0 10.0 10.0 ] in
  let m =
    Extractor.extract ~config:fast_config ~tech:T.imec018 ~die:die100
      [ well; tap ]
  in
  match m.Macromodel.well_capacitance with
  | [ (name, c) ] ->
    Alcotest.(check string) "well name" "nwell:vdd" name;
    (* 400 um^2 * 0.1 fF/um^2 = 40 fF + sidewall *)
    Alcotest.(check bool) (Printf.sprintf "C = %g plausible" c) true
      (c > 20.0e-15 && c < 100.0e-15)
  | l -> Alcotest.failf "expected 1 well cap, got %d" (List.length l)

let test_port_outside_die_rejected () =
  let p = Port.v ~name:"x" ~kind:Port.Resistive
      [ G.Rect.make 200.0 200.0 210.0 210.0 ] in
  match
    Extractor.extract ~config:fast_config ~tech:T.imec018 ~die:die100 [ p ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_solve_constraint_errors () =
  let m = two_contact_model () in
  Alcotest.(check bool) "double constraint rejected" true
    (match
       Macromodel.solve m ~driven:[ ("a", 1.0) ] ~grounded:[ "a" ]
     with
     | exception Invalid_argument _ -> true
     | _ -> false);
  Alcotest.(check bool) "no constraint rejected" true
    (match Macromodel.solve m ~driven:[] ~grounded:[] with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_to_resistors () =
  let m = two_contact_model () in
  match Macromodel.to_resistors m with
  | [ (a, b, r) ] ->
    Alcotest.(check string) "a" "a" a;
    Alcotest.(check string) "b" "b" b;
    Alcotest.(check bool) "positive R" true (r > 0.0)
  | l -> Alcotest.failf "expected 1 resistor, got %d" (List.length l)

let test_grounded_backplane_shields () =
  (* metallizing the backside gives the noise a vertical escape path
     and reduces lateral coupling *)
  let inject = Port.v ~name:"inj" ~kind:Port.Resistive
      [ G.Rect.make 5.0 45.0 15.0 55.0 ] in
  let sense = Port.v ~name:"sns" ~kind:Port.Probe
      [ G.Rect.make 80.0 45.0 90.0 55.0 ] in
  let bare =
    Extractor.extract ~config:fast_config ~tech:T.imec018 ~die:die100
      [ inject; sense ]
  in
  let plated =
    Extractor.extract ~config:fast_config ~grounded_backplane:true
      ~tech:T.imec018 ~die:die100 [ inject; sense ]
  in
  Alcotest.(check (list string)) "backplane port appended"
    [ "inj"; "sns"; "backplane" ]
    (Macromodel.port_names plated);
  let d_bare = Macromodel.divider bare ~inject:"inj" ~sense:"sns" ~grounded:[] in
  let d_plated =
    Macromodel.divider plated ~inject:"inj" ~sense:"sns"
      ~grounded:[ "backplane" ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "plated %g < bare %g" d_plated d_bare)
    true (d_plated < 0.8 *. d_bare)

module Elim = Sn_substrate.Elimination

let test_elimination_simple_chain () =
  (* three resistors in series, middle nodes eliminated: R total = sum *)
  let net =
    Elim.of_conductances ~n:4 ~ports:[| 0; 3 |]
      [ (0, 1, 1.0 /. 10.0); (1, 2, 1.0 /. 20.0); (2, 3, 1.0 /. 30.0) ]
  in
  Elim.eliminate_internal net;
  let s = Elim.port_conductance net in
  Alcotest.(check (float 1e-12)) "series 60 ohm" (1.0 /. 60.0)
    (-.N.Mat.get s 0 1)

let test_elimination_star () =
  (* a star of three 30-ohm arms collapses to a 30+30 = ... mesh:
     pairwise R between any two ports = 60 || (through third: 120)
     -> star-mesh: g_ij = g_i g_j / (g_1+g_2+g_3) *)
  let g = 1.0 /. 30.0 in
  let net =
    Elim.of_conductances ~n:4 ~ports:[| 0; 1; 2 |]
      [ (0, 3, g); (1, 3, g); (2, 3, g) ]
  in
  Elim.eliminate_internal net;
  let s = Elim.port_conductance net in
  Alcotest.(check (float 1e-12)) "mesh conductance" (g /. 3.0)
    (-.N.Mat.get s 0 1)

let test_elimination_matches_schur () =
  (* the direct elimination and the CG Schur complement must produce
     the same macromodel on the same small grid *)
  let die = G.Rect.make 0.0 0.0 60.0 60.0 in
  let cfg = { Grid.nx = 10; ny = 10; z_per_layer = Some [ 1; 1; 1; 1 ] } in
  let ports =
    [ Port.v ~name:"a" ~kind:Port.Resistive [ G.Rect.make 6.0 24.0 18.0 36.0 ];
      Port.v ~name:"b" ~kind:Port.Resistive [ G.Rect.make 42.0 24.0 54.0 36.0 ];
      Port.v ~name:"c" ~kind:Port.Probe [ G.Rect.make 24.0 6.0 36.0 18.0 ] ]
  in
  let schur = Extractor.extract ~config:cfg ~tech:T.imec018 ~die ports in
  let direct = Elim.reduce_grid ~config:cfg ~tech:T.imec018 ~die ports in
  let max_rel = ref 0.0 in
  for i = 0 to 2 do
    for j = 0 to 2 do
      let a = N.Mat.get schur.Macromodel.conductance i j in
      let b = N.Mat.get direct.Macromodel.conductance i j in
      if Float.abs a > 1e-15 then
        max_rel := Float.max !max_rel (Float.abs ((a -. b) /. a))
    done
  done;
  Alcotest.(check bool)
    (Printf.sprintf "reductions agree (max rel err %.2e)" !max_rel)
    true (!max_rel < 1e-4)

let test_elimination_heap_matches_scan () =
  (* a pseudo-random conductance mesh; the heap ordering must replay
     the scan's elimination order exactly, so the reduced matrices are
     identical — not merely close *)
  let n = 12 in
  let idx x y = (y * n) + x in
  let seed = ref 123456789 in
  let rand () =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    1.0e-3 *. (0.5 +. (float_of_int (!seed mod 1000) /. 1000.0))
  in
  let edges = ref [] in
  for y = 0 to n - 1 do
    for x = 0 to n - 1 do
      if x + 1 < n then edges := (idx x y, idx (x + 1) y, rand ()) :: !edges;
      if y + 1 < n then edges := (idx x y, idx x (y + 1), rand ()) :: !edges
    done
  done;
  let ports = [| idx 0 0; idx (n - 1) 0; idx 0 (n - 1); idx (n - 1) (n - 1) |] in
  let build () = Elim.of_conductances ~n:(n * n) ~ports !edges in
  let heap_net = build () in
  Elim.eliminate_internal ~strategy:`Heap heap_net;
  let scan_net = build () in
  Elim.eliminate_internal ~strategy:`Scan scan_net;
  let sh = Elim.port_conductance heap_net in
  let ss = Elim.port_conductance scan_net in
  let max_diff = ref 0.0 in
  for i = 0 to 3 do
    for j = 0 to 3 do
      max_diff :=
        Float.max !max_diff (Float.abs (N.Mat.get sh i j -. N.Mat.get ss i j))
    done
  done;
  Alcotest.(check (float 0.0)) "identical reduced matrices" 0.0 !max_diff

let test_elimination_rejects_bad_input () =
  Alcotest.(check bool) "bad node" true
    (match Elim.of_conductances ~n:2 ~ports:[| 0 |] [ (0, 5, 1.0) ] with
     | exception Invalid_argument _ -> true
     | _ -> false);
  Alcotest.(check bool) "bad conductance" true
    (match Elim.of_conductances ~n:2 ~ports:[| 0 |] [ (0, 1, -1.0) ] with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_epi_distance_insensitive () =
  (* on an epi wafer the p+ bulk is a single node: coupling barely
     changes with distance, unlike the high-ohmic wafer *)
  let die = G.Rect.make 0.0 0.0 300.0 300.0 in
  let cfg = { Grid.nx = 24; ny = 24; z_per_layer = Some [ 1; 2; 2; 1 ] } in
  let coupling ~tech ~distance =
    let ports =
      [ Port.v ~name:"inj" ~kind:Port.Resistive
          [ G.Rect.make 20.0 140.0 40.0 160.0 ];
        Port.v ~name:"vic" ~kind:Port.Probe
          [ G.Rect.make (40.0 +. distance) 140.0 (60.0 +. distance) 160.0 ];
        Port.v ~name:"tap" ~kind:Port.Resistive
          [ G.Rect.make 140.0 20.0 160.0 40.0 ] ]
    in
    let m = Extractor.extract ~config:cfg ~tech ~die ports in
    20.0 *. log10 (Macromodel.divider m ~inject:"inj" ~sense:"vic"
                     ~grounded:[ "tap" ])
  in
  let epi_near = coupling ~tech:T.epi018 ~distance:20.0 in
  let epi_far = coupling ~tech:T.epi018 ~distance:200.0 in
  let ho_near = coupling ~tech:T.imec018 ~distance:20.0 in
  let ho_far = coupling ~tech:T.imec018 ~distance:200.0 in
  Alcotest.(check bool)
    (Printf.sprintf "epi flat: %.1f vs %.1f dB" epi_near epi_far)
    true
    (Float.abs (epi_near -. epi_far) < 1.0);
  Alcotest.(check bool)
    (Printf.sprintf "high-ohmic improves: %.1f -> %.1f dB" ho_near ho_far)
    true
    (ho_near -. ho_far > 2.0)

let test_epi_card_valid () =
  match T.validate T.epi018 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "epi018 invalid: %s" e

let test_grid_convergence () =
  (* refining the grid must not change the port resistance wildly *)
  let coarse = { Grid.nx = 16; ny = 16; z_per_layer = Some [ 1; 1; 1; 1 ] } in
  let fine = { Grid.nx = 32; ny = 32; z_per_layer = Some [ 1; 2; 2; 2 ] } in
  let r_coarse =
    Macromodel.coupling_resistance (two_contact_model ~cfg:coarse ()) "a" "b"
  in
  let r_fine =
    Macromodel.coupling_resistance (two_contact_model ~cfg:fine ()) "a" "b"
  in
  let rel = Float.abs (r_fine -. r_coarse) /. r_fine in
  Alcotest.(check bool)
    (Printf.sprintf "coarse %g vs fine %g: %.0f%%" r_coarse r_fine (100.0 *. rel))
    true (rel < 0.5)

(* ------------------------------------------------------------------ *)
(* extraction at scale: tiled hierarchical reduction, the macromodel
   cache, and pool determinism *)

module Cache = Sn_substrate.Cache
module Pool = Sn_engine.Pool

let stats_exn () =
  match Extractor.last_stats () with
  | Some s -> s
  | None -> Alcotest.fail "extractor recorded no stats"

let mat_entries m =
  let np = N.Mat.rows m in
  Array.init (np * np) (fun k -> N.Mat.get m (k / np) (k mod np))

(* byte-identical: same IEEE bits, not merely close *)
let check_identical what a b =
  let ea = mat_entries a and eb = mat_entries b in
  Alcotest.(check bool) what true
    (Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       ea eb)

let scale_die = G.Rect.make 0.0 0.0 60.0 60.0

let scale_ports seed =
  (* 3 or 4 square ports placed by a tiny LCG, always inside the die *)
  let state = ref (seed land 0x3FFFFFFF) in
  let rand m =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod m
  in
  let n_ports = 3 + rand 2 in
  List.init n_ports (fun k ->
      let x0 = 2.0 +. float_of_int (rand 44) in
      let y0 = 2.0 +. float_of_int (rand 44) in
      Port.v ~name:(Printf.sprintf "p%d" k)
        ~kind:(if k = 2 then Port.Probe else Port.Resistive)
        [ G.Rect.make x0 y0 (x0 +. 12.0) (y0 +. 12.0) ])

let max_rel_err a b =
  let scale =
    Array.fold_left (fun m x -> Float.max m (Float.abs x)) 1e-300
      (mat_entries a)
  in
  let ea = mat_entries a and eb = mat_entries b in
  let worst = ref 0.0 in
  Array.iteri
    (fun k x -> worst := Float.max !worst (Float.abs (x -. eb.(k)) /. scale))
    ea;
  !worst

let qcheck_tiled_matches_direct =
  QCheck.Test.make ~count:12 ~name:"tiled MG-CG = direct elimination"
    QCheck.(
      quad (int_range 4 10) (int_range 4 10)
        (pair (int_range 1 3) (int_range 1 3))
        (int_range 0 10000))
    (fun (nx, ny, tiles, seed) ->
      let cfg = { Grid.nx; ny; z_per_layer = Some [ 1; 1; 1; 1 ] } in
      let ports = scale_ports seed in
      let tiled =
        Extractor.extract ~config:cfg ~solver:Extractor.Mg_cg ~tiles
          ~tech:T.imec018 ~die:scale_die ports
      in
      let direct =
        Elim.reduce_grid ~config:cfg ~tech:T.imec018 ~die:scale_die ports
      in
      max_rel_err direct.Macromodel.conductance
        tiled.Macromodel.conductance
      < 1e-8)

let scale_cfg = { Grid.nx = 16; ny = 16; z_per_layer = Some [ 1; 1; 1; 1 ] }

let scale_ports4 =
  [ Port.v ~name:"a" ~kind:Port.Resistive [ G.Rect.make 4.0 4.0 16.0 16.0 ];
    Port.v ~name:"b" ~kind:Port.Resistive [ G.Rect.make 44.0 4.0 56.0 16.0 ];
    Port.v ~name:"c" ~kind:Port.Resistive [ G.Rect.make 4.0 44.0 16.0 56.0 ];
    Port.v ~name:"d" ~kind:Port.Resistive [ G.Rect.make 44.0 44.0 56.0 56.0 ] ]

let fresh_cache_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "snoise_cache_test_%d_%d" (Unix.getpid ()) !counter)
    in
    if Sys.file_exists dir then
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
    dir

let extract_cached cache =
  Extractor.extract ~config:scale_cfg ~tiles:(2, 2) ~cache ~tech:T.imec018
    ~die:scale_die scale_ports4

let test_cache_round_trip () =
  let cache = Cache.create ~dir:(fresh_cache_dir ()) in
  let cold = extract_cached cache in
  let s_cold = stats_exn () in
  Alcotest.(check int) "cold: no hits" 0 s_cold.Extractor.cache_hits;
  Alcotest.(check int) "cold: all tiles missed" 4
    s_cold.Extractor.cache_misses;
  Alcotest.(check bool) "cold: CG ran" true
    (s_cold.Extractor.cg_iterations_total > 0);
  let warm = extract_cached cache in
  let s_warm = stats_exn () in
  Alcotest.(check int) "warm: all tiles hit" 4 s_warm.Extractor.cache_hits;
  Alcotest.(check int) "warm: no misses" 0 s_warm.Extractor.cache_misses;
  Alcotest.(check int) "warm: reduction skipped (no CG)" 0
    s_warm.Extractor.cg_iterations_total;
  check_identical "warm result byte-identical"
    cold.Macromodel.conductance warm.Macromodel.conductance;
  (* corrupt one entry: that tile (and only that tile) recomputes,
     and the result is unchanged *)
  let entries =
    Sys.readdir (Cache.dir cache)
    |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".tile")
    |> List.sort String.compare
  in
  Alcotest.(check int) "four entries on disk" 4 (List.length entries);
  let victim = Filename.concat (Cache.dir cache) (List.hd entries) in
  let oc = open_out_bin victim in
  output_string oc "garbage";
  close_out oc;
  let rebuilt = extract_cached cache in
  let s_rebuilt = stats_exn () in
  Alcotest.(check int) "corrupted: three hits" 3
    s_rebuilt.Extractor.cache_hits;
  Alcotest.(check int) "corrupted: one miss" 1
    s_rebuilt.Extractor.cache_misses;
  check_identical "recomputed result byte-identical"
    cold.Macromodel.conductance rebuilt.Macromodel.conductance

let test_cache_reduction_namespace () =
  (* a reduction-tagged run and an exact run must never share cache
     entries: same geometry, disjoint keys, identical conductances *)
  let cache = Cache.create ~dir:(fresh_cache_dir ()) in
  let exact = extract_cached cache in
  let digest =
    Snoise.Reduced_model.(config_digest default_config)
  in
  let extract_reduced () =
    Extractor.extract ~config:scale_cfg ~tiles:(2, 2) ~cache
      ~reduction:digest ~tech:T.imec018 ~die:scale_die scale_ports4
  in
  let reduced = extract_reduced () in
  let s = stats_exn () in
  Alcotest.(check int) "reduced run misses the exact entries" 4
    s.Extractor.cache_misses;
  Alcotest.(check int) "no cross-namespace hits" 0 s.Extractor.cache_hits;
  let entries =
    Sys.readdir (Cache.dir cache) |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".tile")
  in
  Alcotest.(check int) "disjoint entries on disk" 8 (List.length entries);
  check_identical "tile content independent of the tag"
    exact.Macromodel.conductance reduced.Macromodel.conductance;
  (* warm within the same namespace still hits *)
  ignore (extract_reduced ());
  let s_warm = stats_exn () in
  Alcotest.(check int) "reduced namespace warm" 4 s_warm.Extractor.cache_hits

let test_cache_certificates () =
  let cache = Cache.create ~dir:(fresh_cache_dir ()) in
  let cold = extract_cached cache in
  (* every freshly stored entry carries a verifying certificate *)
  let vf = Cache.verify_dir cache in
  Alcotest.(check int) "four entries judged" 4
    (List.length vf.Cache.vf_entries);
  Alcotest.(check int) "all certified" 4 vf.Cache.vf_certified;
  Alcotest.(check int) "none bad" 0 vf.Cache.vf_bad;
  (* re-verification of a warm cache is hashing only: the warm
     extraction that follows does zero CG work *)
  let warm = extract_cached cache in
  let s_warm = stats_exn () in
  Alcotest.(check int) "warm certified cache: 0 CG iterations" 0
    s_warm.Extractor.cg_iterations_total;
  Alcotest.(check int) "warm certified cache: all hits" 4
    s_warm.Extractor.cache_hits;
  check_identical "warm result byte-identical"
    cold.Macromodel.conductance warm.Macromodel.conductance;
  (* tamper with the last byte (inside the stored signature): the
     entry must be judged Bad and the lookup must reject it *)
  let victim_file =
    Sys.readdir (Cache.dir cache)
    |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".tile")
    |> List.sort String.compare |> List.hd
  in
  let victim_key = Filename.chop_suffix victim_file ".tile" in
  let victim = Filename.concat (Cache.dir cache) victim_file in
  let bytes =
    let ic = open_in_bin victim in
    let n = in_channel_length ic in
    let b = really_input_string ic n in
    close_in ic;
    Bytes.of_string b
  in
  let last = Bytes.length bytes - 1 in
  Bytes.set bytes last (Char.chr (Char.code (Bytes.get bytes last) lxor 0xFF));
  let oc = open_out_bin victim in
  output_bytes oc bytes;
  close_out oc;
  (match Cache.verify_entry cache ~key:victim_key with
  | Cache.Bad _ -> ()
  | s ->
    Alcotest.failf "tampered entry judged %s, expected bad"
      (Cache.status_name s));
  let vf2 = Cache.verify_dir cache in
  Alcotest.(check int) "one bad after tampering" 1 vf2.Cache.vf_bad;
  Alcotest.(check int) "three still certified" 3 vf2.Cache.vf_certified;
  (* tampering downgrades to recomputation, never to a wrong answer *)
  Cache.reset_counters ();
  let rebuilt = extract_cached cache in
  let c = Cache.counters () in
  Alcotest.(check bool) "rejection counted" true (c.Cache.rejected >= 1);
  check_identical "rebuilt result byte-identical"
    cold.Macromodel.conductance rebuilt.Macromodel.conductance;
  Alcotest.(check int) "healthy again after recompute" 0
    (Cache.verify_dir cache).Cache.vf_bad;
  (* a previous-format entry is judged Stale and is a clean miss *)
  let stale_model =
    { Cache.labels = [| "n" |]; matrix = [| 1.0 |]; iterations = 0;
      form = "exact" }
  in
  let stale = Filename.concat (Cache.dir cache) "00stale.tile" in
  let oc = open_out_bin stale in
  output_string oc "snoise-tile-cache\n";
  Marshal.to_channel oc
    (Cache.format_version - 1, stale_model, (None : unit option))
    [];
  close_out oc;
  Alcotest.(check bool) "stale entry judged stale" true
    (Cache.verify_entry cache ~key:"00stale" = Cache.Stale);
  Alcotest.(check int) "verify_dir counts it" 1
    (Cache.verify_dir cache).Cache.vf_stale;
  Alcotest.(check bool) "stale lookup is a miss" true
    (Cache.lookup cache ~key:"00stale" = None)

let test_jobs_identity () =
  let run () =
    Extractor.extract ~config:scale_cfg ~tiles:(2, 2) ~tech:T.imec018
      ~die:scale_die scale_ports4
  in
  Pool.set_default_jobs 1;
  let seq = run () in
  Pool.set_default_jobs 4;
  let par = run () in
  Pool.set_default_jobs (Pool.env_jobs ());
  check_identical "1 worker = 4 workers, byte-identical"
    seq.Macromodel.conductance par.Macromodel.conductance

let test_solvers_agree () =
  (* the three solvers and the untiled path agree on one setup *)
  let base =
    Elim.reduce_grid ~config:scale_cfg ~tech:T.imec018 ~die:scale_die
      scale_ports4
  in
  List.iter
    (fun (what, solver, tiles) ->
      let m =
        Extractor.extract ~config:scale_cfg ~solver ~tiles ~tech:T.imec018
          ~die:scale_die scale_ports4
      in
      let err = max_rel_err base.Macromodel.conductance m.Macromodel.conductance in
      Alcotest.(check bool)
        (Printf.sprintf "%s (rel err %.2e)" what err)
        true (err < 1e-8))
    [ ("mg-cg untiled", Extractor.Mg_cg, (1, 1));
      ("mg-cg tiled", Extractor.Mg_cg, (2, 2));
      ("jacobi-cg tiled", Extractor.Jacobi_cg, (2, 2));
      ("direct tiled", Extractor.Direct, (3, 2)) ]

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "tech",
      [
        Alcotest.test_case "imec018 valid" `Quick test_tech_valid;
        Alcotest.test_case "metal lookup" `Quick test_tech_lookup;
        Alcotest.test_case "20 ohm cm bulk" `Quick test_tech_bulk_resistivity;
        Alcotest.test_case "wire capacitances" `Quick test_wire_caps_positive;
        Alcotest.test_case "validation catches bad cards" `Quick
          test_tech_validation_catches;
      ] );
    ( "substrate.grid",
      [
        Alcotest.test_case "dimensions" `Quick test_grid_dimensions;
        Alcotest.test_case "depth preserved" `Quick test_grid_depth_preserved;
        Alcotest.test_case "bad configs" `Quick test_grid_bad_config;
        Alcotest.test_case "conductance stencil" `Quick
          test_grid_conductances_positive;
        Alcotest.test_case "surface cells" `Quick test_surface_cell_rect;
      ] );
    ( "substrate.ports",
      [
        Alcotest.test_case "ports from layout" `Quick test_port_of_layout;
        Alcotest.test_case "empty region" `Quick test_port_empty_region;
      ] );
    ( "substrate.extraction",
      [
        Alcotest.test_case "macromodel symmetric" `Quick test_macromodel_symmetric;
        Alcotest.test_case "laplacian row sums" `Quick test_macromodel_row_sums_zero;
        Alcotest.test_case "plausible spreading R" `Quick
          test_two_contact_resistance_plausible;
        Alcotest.test_case "R grows with separation" `Quick
          test_resistance_increases_with_separation;
        Alcotest.test_case "R falls with contact area" `Quick
          test_resistance_decreases_with_contact_area;
        Alcotest.test_case "floating divider" `Quick test_divider_reciprocity;
        Alcotest.test_case "guard ring shields" `Quick test_guard_ring_shields;
        Alcotest.test_case "well capacitance" `Quick test_well_capacitance_reported;
        Alcotest.test_case "port outside die" `Quick test_port_outside_die_rejected;
        Alcotest.test_case "solve constraint errors" `Quick
          test_solve_constraint_errors;
        Alcotest.test_case "resistor export" `Quick test_to_resistors;
        Alcotest.test_case "grounded backplane" `Quick
          test_grounded_backplane_shields;
        Alcotest.test_case "elimination: series chain" `Quick
          test_elimination_simple_chain;
        Alcotest.test_case "elimination: star-mesh" `Quick
          test_elimination_star;
        Alcotest.test_case "elimination matches Schur" `Quick
          test_elimination_matches_schur;
        Alcotest.test_case "elimination heap = scan" `Quick
          test_elimination_heap_matches_scan;
        Alcotest.test_case "elimination input checks" `Quick
          test_elimination_rejects_bad_input;
        Alcotest.test_case "epi wafer distance-insensitive" `Slow
          test_epi_distance_insensitive;
        Alcotest.test_case "epi card valid" `Quick test_epi_card_valid;
        Alcotest.test_case "grid convergence" `Slow test_grid_convergence;
      ] );
    ( "substrate.scale",
      [
        qcheck qcheck_tiled_matches_direct;
        Alcotest.test_case "solvers agree" `Quick test_solvers_agree;
        Alcotest.test_case "cache round trip" `Quick test_cache_round_trip;
        Alcotest.test_case "reduction cache namespace" `Quick
          test_cache_reduction_namespace;
        Alcotest.test_case "cache certificates" `Quick
          test_cache_certificates;
        Alcotest.test_case "jobs identity" `Quick test_jobs_identity;
      ] );
  ]
