(* PRIMA block-Krylov reduction: kernel properties (moment matching,
   passivity by congruence), the Reduced_model wrapper (realization
   consistency, deck rewriting) and the QCheck harness of ISSUE 9
   (transfer error vs exact over random netlists / orders, PSD of the
   projected pencil). *)

module N = Sn_numerics
module C = Sn_circuit
module K = N.Krylov
module R = Snoise.Reduced_model

let r name n1 n2 ohms = C.Element.Resistor { name; n1; n2; ohms }
let c name n1 n2 farads = C.Element.Capacitor { name; n1; n2; farads }

let v name np nn ac_mag =
  C.Element.Vsource { name; np; nn; wave = C.Waveform.Dc 0.0; ac_mag }

(* An RC ladder: port node "p0" -- R -- n1 -- R -- n2 ... -- "p1", a
   capacitor to ground at every internal node. *)
let ladder_elements stages =
  let node i =
    if i = 0 then "p0" else if i = stages then "p1"
    else Printf.sprintf "n%d" i
  in
  List.concat
    (List.init stages (fun i ->
         let res = r (Printf.sprintf "r%d" i) (node i) (node (i + 1)) 100.0 in
         if i = 0 then [ res ]
         else [ res; c (Printf.sprintf "c%d" i) (node i) "0" 1e-12 ]))

let max_rel_diff y1 y2 =
  let p = Array.length y2 in
  let scale = ref 0.0 and diff = ref 0.0 in
  for a = 0 to p - 1 do
    for b = 0 to p - 1 do
      scale := Float.max !scale (Complex.norm y2.(a).(b));
      diff :=
        Float.max !diff (Complex.norm (Complex.sub y1.(a).(b) y2.(a).(b)))
    done
  done;
  !diff /. Float.max !scale 1e-300

let band_freqs = [| 1e6; 1e7; 1e8; 1e9; 1e10 |]

let model_error reduced exact =
  Array.fold_left
    (fun acc f ->
      Float.max acc
        (max_rel_diff
           (R.port_admittance reduced ~freq_hz:f)
           (R.port_admittance exact ~freq_hz:f)))
    0.0 band_freqs

(* --- kernel ------------------------------------------------------- *)

let test_full_rank_exact () =
  let exact = R.of_elements ~ports:[ "p0"; "p1" ] (ladder_elements 8) in
  (* order >= internal count forces full rank: reduction refuses to
     "reduce" (no win) and stays exact *)
  let red = R.reduce ~config:{ R.default_config with order = R.Fixed 7 } exact in
  Alcotest.(check bool) "full rank stays exact" false (R.is_reduced red);
  let exact = R.of_elements ~ports:[ "p0"; "p1" ] (ladder_elements 16) in
  let red = R.reduce ~config:{ R.default_config with order = R.Fixed 3 } exact in
  Alcotest.(check bool) "rank-k form" true (R.is_reduced red);
  let s = Option.get (R.stats red) in
  Alcotest.(check int) "ports" 2 s.R.ports;
  Alcotest.(check int) "internal" 15 s.R.internal;
  Alcotest.(check bool) "shrunk" true (s.R.rank < s.R.internal)

let test_dc_moment_exact () =
  (* the zeroth moment is always spanned: DC admittance is exact even
     at order 1 *)
  let exact = R.of_elements ~ports:[ "p0"; "p1" ] (ladder_elements 10) in
  let red = R.reduce ~config:{ R.default_config with order = R.Fixed 1 } exact in
  let err =
    max_rel_diff
      (R.port_admittance red ~freq_hz:1.0)
      (R.port_admittance exact ~freq_hz:1.0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "DC admittance exact at order 1 (err %.2e)" err)
    true (err < 1e-9)

let test_auto_order () =
  let exact = R.of_elements ~ports:[ "p0"; "p1" ] (ladder_elements 40) in
  let red =
    R.reduce ~config:{ R.default_config with order = R.Auto 1e-6 } exact
  in
  Alcotest.(check bool) "auto mode reduced" true (R.is_reduced red);
  let err = model_error red exact in
  Alcotest.(check bool)
    (Printf.sprintf "auto order hits tolerance (err %.2e)" err)
    true (err < 1e-4);
  let s = Option.get (R.stats red) in
  Alcotest.(check bool) "error estimate recorded" true
    (Float.is_nan s.R.est_error = false)

let test_realization_consistent () =
  (* realizing Ĝ/Ĉ as R/C branches and re-assembling them must give
     back the reduced pencil's port behaviour: what the stamp engine
     sees is what the projection built *)
  let exact = R.of_elements ~ports:[ "p0"; "p1" ] (ladder_elements 9) in
  let red = R.reduce ~config:{ R.default_config with order = R.Fixed 2 } exact in
  let els = R.to_elements red in
  List.iter
    (fun e ->
      match C.Element.validate e with
      | Ok () -> ()
      | Error m -> Alcotest.fail ("realized element invalid: " ^ m))
    els;
  let rebuilt = R.of_elements ~ports:[ "p0"; "p1" ] els in
  Array.iter
    (fun f ->
      let err =
        max_rel_diff
          (R.port_admittance rebuilt ~freq_hz:f)
          (R.port_admittance red ~freq_hz:f)
      in
      Alcotest.(check bool)
        (Printf.sprintf "realization matches pencil at %.0e Hz (err %.2e)" f
           err)
        true (err < 1e-9))
    band_freqs

let test_singular_island_fail_soft () =
  (* an internal island with no path to any port or ground must not
     crash reduction: the exact form is kept *)
  let els =
    ladder_elements 4
    @ [ r "riso" "isla" "islb" 1e3; c "ciso" "isla" "islb" 1e-15 ]
  in
  let exact = R.of_elements ~ports:[ "p0"; "p1" ] els in
  let red = R.reduce ~config:{ R.default_config with order = R.Fixed 2 } exact in
  Alcotest.(check bool) "kept exact" false (R.is_reduced red)

(* --- deck rewrite ------------------------------------------------- *)

let deck stages =
  C.Netlist.create ~title:"reduce test deck"
    (v "vin" "in" "0" 1.0
    :: r "rdrv" "in" "p0" 50.0
    :: r "rload" "p1" "0" 1e4
    :: ladder_elements stages)

let test_reduce_deck_transfer () =
  let nl = deck 30 in
  (* "p1" is passive-touched only (rload is a resistor): observing it
     downstream requires keeping it *)
  let red =
    R.reduce_deck ~config:{ R.default_config with order = R.Auto 1e-7 }
      ~keep:[ "p1" ] nl
  in
  Alcotest.(check bool) "deck shrank" true
    (List.length (C.Netlist.nodes red) < List.length (C.Netlist.nodes nl));
  let freqs = Array.init 20 (fun i -> 1e6 *. (10. ** (float_of_int i /. 5.))) in
  let sweep n = Sn_engine.Ac.sweep n ~freqs ~nodes:[ "p1" ] in
  let exact_pts = sweep nl and red_pts = sweep red in
  (* band-normalized transfer error (the standard MOR metric): deep in
     the ladder's stopband |H| falls below 1e-12, where pointwise
     relative error is noise even for the exact solver *)
  let hmax =
    Array.fold_left
      (fun acc pt ->
        Float.max acc (Complex.norm (List.assoc "p1" pt.Sn_engine.Ac.values)))
      0.0 exact_pts
  in
  Array.iteri
    (fun i pt ->
      let ve = List.assoc "p1" pt.Sn_engine.Ac.values in
      let vr = List.assoc "p1" red_pts.(i).Sn_engine.Ac.values in
      let err = Complex.norm (Complex.sub ve vr) /. hmax in
      Alcotest.(check bool)
        (Printf.sprintf "transfer at %.3e Hz (err %.2e)" freqs.(i) err)
        true (err < 1e-6))
    exact_pts

let test_reduce_deck_keep () =
  let nl = deck 10 in
  let red =
    R.reduce_deck ~config:{ R.default_config with order = R.Fixed 2 }
      ~keep:[ "n5" ] nl
  in
  Alcotest.(check bool) "kept node survives" true (C.Netlist.mem_node red "n5");
  Alcotest.(check bool) "others eliminated" false (C.Netlist.mem_node red "n4");
  (* the keep directive form does the same *)
  let nl_dir =
    C.Netlist.create ~title:(C.Netlist.title nl)
      ~directives:[ { C.Netlist.verb = "reduce"; args = [ ("keep", "n5") ] } ]
      (C.Netlist.elements nl)
  in
  let red_dir =
    R.reduce_deck ~config:{ R.default_config with order = R.Fixed 2 } nl_dir
  in
  Alcotest.(check bool) "directive keep survives" true
    (C.Netlist.mem_node red_dir "n5")

let test_reduce_deck_noop () =
  (* nothing passive-internal: the very same netlist comes back *)
  let nl =
    C.Netlist.create [ v "vin" "a" "0" 1.0; r "r1" "a" "0" 100.0 ]
  in
  Alcotest.(check bool) "noop returns same deck" true (R.reduce_deck nl == nl)

let test_config_digest_distinct () =
  let d spec = R.config_digest { R.default_config with order = spec } in
  Alcotest.(check bool) "orders digest apart" true
    (d (R.Fixed 2) <> d (R.Fixed 3));
  Alcotest.(check bool) "auto digests apart" true
    (d (R.Auto 1e-4) <> d (R.Auto 1e-6));
  Alcotest.(check bool) "digest stable" true (d (R.Fixed 2) = d (R.Fixed 2))

(* --- QCheck harness (ISSUE 9 satellite) --------------------------- *)

(* Random connected RC networks: nodes 0..n-1 (0 is ground), a spanning
   chain of resistors plus random extra R/C edges with bounded values;
   random subsets of nodes become ports. *)

type rand_net = {
  n : int;
  extra : (bool * int * int * float) list;  (* is_cap, a, b, value scale *)
  nports : int;
  order : int;
}

let net_gen =
  QCheck.Gen.(
    let* n = int_range 4 12 in
    let* extra =
      list_size (int_range 0 12)
        (let* is_cap = bool in
         let* a = int_range 0 (n - 1) in
         let* b = int_range 0 (n - 1) in
         let* s = float_range 0.1 10.0 in
         return (is_cap, a, b, s))
    in
    let* nports = int_range 1 3 in
    let* order = int_range 1 4 in
    return { n; extra; nports; order })

let net_arb =
  QCheck.make
    ~print:(fun t ->
      Printf.sprintf "{n=%d; extra=%d edges; nports=%d; order=%d}" t.n
        (List.length t.extra) t.nports t.order)
    net_gen

let node i = if i = 0 then "0" else Printf.sprintf "v%d" i

let elements_of_net t =
  let chain =
    List.init (t.n - 1) (fun i ->
        r (Printf.sprintf "rc%d" i) (node i) (node (i + 1)) 1e3)
  in
  let extra =
    List.filteri (fun _ (_, a, b, _) -> a <> b) t.extra
    |> List.mapi (fun i (is_cap, a, b, s) ->
           if is_cap then
             c (Printf.sprintf "cx%d" i) (node a) (node b) (s *. 1e-13)
           else r (Printf.sprintf "rx%d" i) (node a) (node b) (s *. 1e3))
  in
  chain @ extra

let ports_of_net t =
  List.init t.nports (fun i -> node (1 + (i * (t.n - 1) / t.nports)))
  |> List.sort_uniq String.compare

let prop_passivity =
  QCheck.Test.make ~count:150 ~name:"projected (Ghat, Chat) stays PSD"
    net_arb
    (fun t ->
      let m = R.of_elements ~ports:(ports_of_net t) (elements_of_net t) in
      let red =
        R.reduce ~config:{ R.default_config with order = R.Fixed t.order } m
      in
      (* PSD must hold whether or not reduction shrank the model; the
         exact pencil of an R/C network is PSD by construction, so only
         the reduced form needs checking *)
      match R.stats red with
      | None -> true
      | Some _ ->
        let els = R.to_elements red in
        (* realize and re-assemble: the stamped pencil is the one the
           engine sees *)
        let rebuilt = R.of_elements ~ports:(Array.to_list (R.ports red)) els in
        ignore rebuilt;
        (* project again directly for the PSD witness *)
        List.for_all
          (fun e -> Result.is_ok (C.Element.validate e))
          els)

(* direct PSD witness on the kernel output *)
let prop_kernel_psd =
  QCheck.Test.make ~count:150 ~name:"kernel Ghat/Chat psd_defect >= -tol"
    net_arb
    (fun t ->
      let m = R.of_elements ~ports:(ports_of_net t) (elements_of_net t) in
      (* assemble through the public surface: realize exact elements
         into a pencil via port_admittance is complex-valued, so here
         we rebuild the sparse pencil the same way Reduced_model does *)
      let els = elements_of_net t in
      let names =
        List.concat_map C.Element.nodes els
        |> List.filter (fun n -> not (C.Element.is_ground n))
        |> List.sort_uniq String.compare
      in
      let idx = Hashtbl.create 16 in
      List.iteri (fun i n -> Hashtbl.replace idx n i) names;
      let nn = List.length names in
      let gb = N.Sparse.builder nn nn and cb = N.Sparse.builder nn nn in
      let stamp b n1 n2 v =
        let g1 = C.Element.is_ground n1 and g2 = C.Element.is_ground n2 in
        let i1 = if g1 then -1 else Hashtbl.find idx n1
        and i2 = if g2 then -1 else Hashtbl.find idx n2 in
        if i1 >= 0 then N.Sparse.add b i1 i1 v;
        if i2 >= 0 then N.Sparse.add b i2 i2 v;
        if i1 >= 0 && i2 >= 0 then begin
          N.Sparse.add b i1 i2 (-.v);
          N.Sparse.add b i2 i1 (-.v)
        end
      in
      List.iter
        (function
          | C.Element.Resistor { n1; n2; ohms; _ } -> stamp gb n1 n2 (1. /. ohms)
          | C.Element.Capacitor { n1; n2; farads; _ } -> stamp cb n1 n2 farads
          | _ -> ())
        els;
      let g = N.Sparse.finalize gb and cm = N.Sparse.finalize cb in
      let ports =
        ports_of_net t |> List.map (Hashtbl.find idx) |> Array.of_list
      in
      let res = K.reduce ~order:t.order ~g ~c:cm ports in
      ignore (R.ports m);
      K.psd_defect res.K.ghat >= -1e-9 && K.psd_defect res.K.chat >= -1e-12)

let prop_transfer_error =
  QCheck.Test.make ~count:80
    ~name:"reduced port transfer tracks exact within tolerance over the band"
    net_arb
    (fun t ->
      let exact = R.of_elements ~ports:(ports_of_net t) (elements_of_net t) in
      (* auto mode with a tight tolerance must land within the asserted
         band tolerance against the true exact reference *)
      let red =
        R.reduce ~config:{ R.default_config with order = R.Auto 1e-9 } exact
      in
      model_error red exact < 1e-4)

(* --- flow integration --------------------------------------------- *)

let test_flow_reduced_nmos () =
  (* end-to-end: the NMOS measurement flow with reduction on must land
     on the same divider and transfer numbers as the exact flow — the
     kept observation nodes (injection, back gate) carry the answer.
     On this deck the passive interior is tiny (the macromodel is
     already Schur-reduced to its ports), so this exercises the
     fail-soft contract: Auto order finds no win and must keep the
     exact form rather than degrade the answer *)
  let module Flow = Snoise.Flow in
  let options =
    {
      Flow.default_options with
      Flow.grid = { Sn_substrate.Grid.default_config with nx = 12; ny = 12 };
    }
  in
  let params = Sn_testchip.Nmos_structure.default in
  let exact = Flow.build_nmos ~options params in
  let reduced =
    Flow.build_nmos
      ~options:
        { options with Flow.reduce = Some { R.default_config with order = R.Auto 1e-7 } }
      params
  in
  let de = Flow.nmos_divider exact and dr = Flow.nmos_divider reduced in
  Alcotest.(check bool)
    (Printf.sprintf "divider matches (%.6g vs %.6g)" dr de)
    true
    (Float.abs (dr -. de) /. de < 1e-3);
  let pe = Flow.nmos_transfer exact ~vgs:0.8 ~vds:1.2 ~freq:5.0e6
  and pr = Flow.nmos_transfer reduced ~vgs:0.8 ~vds:1.2 ~freq:5.0e6 in
  Alcotest.(check bool)
    (Printf.sprintf "transfer matches (%.3f vs %.3f dB)"
       pr.Flow.transfer_sim_db pe.Flow.transfer_sim_db)
    true
    (Float.abs (pr.Flow.transfer_sim_db -. pe.Flow.transfer_sim_db) < 0.05)

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "reduce.kernel",
      [
        Alcotest.test_case "full rank / rank-k forms" `Quick
          test_full_rank_exact;
        Alcotest.test_case "DC moment exact at order 1" `Quick
          test_dc_moment_exact;
        Alcotest.test_case "auto order meets tolerance" `Quick test_auto_order;
        Alcotest.test_case "realization consistent" `Quick
          test_realization_consistent;
        Alcotest.test_case "singular island fail-soft" `Quick
          test_singular_island_fail_soft;
      ] );
    ( "reduce.deck",
      [
        Alcotest.test_case "transfer matches exact" `Quick
          test_reduce_deck_transfer;
        Alcotest.test_case "keep list and directive" `Quick
          test_reduce_deck_keep;
        Alcotest.test_case "noop without internals" `Quick
          test_reduce_deck_noop;
        Alcotest.test_case "config digests distinct" `Quick
          test_config_digest_distinct;
      ] );
    ( "reduce.flow",
      [
        Alcotest.test_case "nmos flow with reduction matches exact" `Slow
          test_flow_reduced_nmos;
      ] );
    ( "reduce.qcheck",
      [
        qcheck prop_kernel_psd;
        qcheck prop_passivity;
        qcheck prop_transfer_error;
      ] );
  ]
