#!/bin/sh
# End-to-end smoke of the resident service: start `snoise serve` on a
# temp socket, run a scripted client session (cold request, warm repeat
# asserting a plan-cache hit in stats, lint-error request asserting the
# structured-JSON error path), then shut down through the protocol and
# check the socket file is gone.
#
# Run from the repo root after `dune build`:
#   sh test/server_smoke.sh
# The snoise binary can be overridden with $SNOISE.
set -eu

SNOISE="${SNOISE:-_build/default/bin/snoise_cli.exe}"
SOCK="${TMPDIR:-/tmp}/snoise-smoke-$$.sock"
OUT="${TMPDIR:-/tmp}/snoise-smoke-$$"
mkdir -p "$OUT"

cleanup() {
  rm -rf "$OUT"
  rm -f "$SOCK"
  kill "$SERVER" 2> /dev/null || true
}
trap cleanup EXIT

"$SNOISE" serve --socket "$SOCK" &
SERVER=$!

req() { "$SNOISE" request --socket "$SOCK" --wait 10 "$@"; }

echo "== cold request (fresh cache must miss)"
req '{"id": 1, "verb": "op", "deck_path": "test/decks/clean_rc.sp"}' \
  > "$OUT/cold.json"
python3 - "$OUT/cold.json" << 'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["type"] == "response", r
assert r["served"]["plan"] == "miss", r["served"]
assert r["result"]["voltages"], r
EOF

echo "== warm repeat (same deck text, same content key: hit)"
req '{"id": 2, "verb": "op", "deck_path": "test/decks/clean_rc.sp"}' \
  > "$OUT/warm.json"
python3 - "$OUT/warm.json" << 'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["type"] == "response", r
assert r["served"]["plan"] == "hit", r["served"]
EOF

echo "== stats (cache counters must show the hit)"
req '{"id": 3, "verb": "stats"}' > "$OUT/stats.json"
python3 - "$OUT/stats.json" << 'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["type"] == "response", r
pc = r["result"]["plan_cache"]
assert pc["plan_hits"] >= 1, pc
assert pc["plan_misses"] >= 1, pc
assert "origin" in r["result"]["tile_cache"], r["result"]
EOF

echo "== lint-refused deck answers a structured error (client exits 1)"
set +e
req '{"id": 4, "verb": "op", "deck_path": "test/decks/vsource_loop.sp"}' \
  > "$OUT/err.json"
rc=$?
set -e
[ "$rc" -eq 1 ] || { echo "expected client exit 1, got $rc"; exit 1; }
python3 - "$OUT/err.json" << 'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["type"] == "error", r
assert r["error"]["code"] == "lint-refused", r["error"]
assert isinstance(r["error"]["lint"], dict), r["error"]
EOF

echo "== the connection survived the error: health still answered"
req '{"id": 5, "verb": "health"}' > "$OUT/health.json"
python3 - "$OUT/health.json" << 'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["type"] == "response", r
h = r["result"]
assert h["status"] == "ok", h
assert h["queue"]["depth"] == 0, h
assert h["cache"]["plans"] >= 1, h
assert h["memory"]["shedding"] is False, h
assert h["restarts"] == 0, h
EOF

echo "== protocol shutdown, clean teardown"
req '{"id": 6, "verb": "shutdown"}' > "$OUT/bye.json"
python3 - "$OUT/bye.json" << 'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["type"] == "response", r
assert r["result"]["stopping"] is True, r
EOF
wait "$SERVER"
[ ! -e "$SOCK" ] || { echo "socket file not removed"; exit 1; }

echo "server smoke: ok"
