(* Tests for sn_engine: DC, AC and transient analyses checked against
   closed-form circuit theory. *)

module C = Sn_circuit
module E = C.Element
module W = C.Waveform
module M = C.Mos_model
module U = Sn_numerics.Units
module Dc = Sn_engine.Dc
module Ac = Sn_engine.Ac
module Tran = Sn_engine.Tran
module Goertzel = Sn_numerics.Goertzel

let check_close tol = Alcotest.(check (float tol))

let r name n1 n2 ohms = E.Resistor { name; n1; n2; ohms }
let c name n1 n2 farads = E.Capacitor { name; n1; n2; farads }
let l name n1 n2 henries = E.Inductor { name; n1; n2; henries }

let vdc name np nn v = E.Vsource { name; np; nn; wave = W.dc v; ac_mag = 0.0 }

let vac name np nn ?(dc = 0.0) mag =
  E.Vsource { name; np; nn; wave = W.dc dc; ac_mag = mag }

let idc name np nn v = E.Isource { name; np; nn; wave = W.dc v; ac_mag = 0.0 }

(* ------------------------------------------------------------------ *)
(* DC *)

let test_dc_divider () =
  let nl =
    C.Netlist.create
      [ vdc "v1" "in" "0" 10.0; r "r1" "in" "mid" 1000.0;
        r "r2" "mid" "0" 3000.0 ]
  in
  let s = Dc.solve nl in
  check_close 1e-6 "divider" 7.5 (Dc.voltage s "mid");
  check_close 1e-9 "source current" (-.(10.0 -. 7.5) /. 1000.0)
    (Dc.branch_current s "v1")

let test_dc_current_source () =
  let nl = C.Netlist.create [ idc "i1" "0" "a" 1.0e-3; r "r1" "a" "0" 2000.0 ] in
  let s = Dc.solve nl in
  check_close 1e-6 "IR drop" 2.0 (Dc.voltage s "a")

let test_dc_inductor_short () =
  let nl =
    C.Netlist.create
      [ vdc "v1" "in" "0" 5.0; r "r1" "in" "a" 1000.0; l "l1" "a" "b" 1e-9;
        r "r2" "b" "0" 1000.0 ]
  in
  let s = Dc.solve nl in
  check_close 1e-6 "inductor shorts" 2.5 (Dc.voltage s "a");
  check_close 1e-6 "same both sides" 2.5 (Dc.voltage s "b");
  check_close 1e-9 "inductor current" 2.5e-3 (Dc.branch_current s "l1")

let test_dc_capacitor_open () =
  let nl =
    C.Netlist.create
      [ vdc "v1" "in" "0" 5.0; r "r1" "in" "a" 1000.0; c "c1" "a" "0" 1e-9 ]
  in
  let s = Dc.solve nl in
  check_close 1e-5 "cap open: no drop" 5.0 (Dc.voltage s "a")

let test_dc_vcvs () =
  let nl =
    C.Netlist.create
      [ vdc "v1" "in" "0" 1.0;
        E.Vcvs { name = "e1"; np = "out"; nn = "0"; cp = "in"; cn = "0";
                 gain = 4.0 };
        r "rl" "out" "0" 1000.0 ]
  in
  let s = Dc.solve nl in
  check_close 1e-6 "gain 4" 4.0 (Dc.voltage s "out")

let test_dc_vccs () =
  let nl =
    C.Netlist.create
      [ vdc "v1" "in" "0" 2.0;
        E.Vccs { name = "g1"; np = "out"; nn = "0"; cp = "in"; cn = "0";
                 gm = 1.0e-3 };
        r "rl" "out" "0" 500.0 ]
  in
  let s = Dc.solve nl in
  (* i = gm * 2 V = 2 mA leaving node out -> v_out = -2mA * 500 = -1 V *)
  check_close 1e-6 "vccs polarity" (-1.0) (Dc.voltage s "out")

let diode_connected_bias =
  [ vdc "vdd" "vdd" "0" 1.8;
    r "rd" "vdd" "d" 1000.0;
    E.Mosfet { name = "m1"; drain = "d"; gate = "d"; source = "0";
               bulk = "0"; model = M.default_nmos; w = 10e-6; l = 1e-6;
               mult = 1 } ]

let test_dc_diode_connected_nmos () =
  let nl = C.Netlist.create diode_connected_bias in
  let s = Dc.solve nl in
  let vd = Dc.voltage s "d" in
  (* diode-connected: vgs = vds > vth, KCL: (1.8 - vd)/1k = id(vd) *)
  Alcotest.(check bool) "above threshold" true (vd > M.default_nmos.M.vt0);
  Alcotest.(check bool) "below supply" true (vd < 1.8);
  let op = Dc.mos_operating_point s "m1" in
  let kcl_err = ((1.8 -. vd) /. 1000.0) -. op.M.id in
  Alcotest.(check bool) "KCL satisfied" true (Float.abs kcl_err < 1e-7)

let test_dc_pmos_mirror_polarity () =
  (* PMOS with source at vdd, gate grounded: strongly on; drain pulls
     toward vdd through the device against a resistor to ground *)
  let nl =
    C.Netlist.create
      [ vdc "vdd" "vdd" "0" 1.8;
        E.Mosfet { name = "mp"; drain = "d"; gate = "0"; source = "vdd";
                   bulk = "vdd"; model = M.default_pmos; w = 50e-6;
                   l = 0.5e-6; mult = 1 };
        r "rl" "d" "0" 10000.0 ]
  in
  let s = Dc.solve nl in
  Alcotest.(check bool) "pmos pulls high" true (Dc.voltage s "d" > 1.2)

let test_dc_mos_reverse_conduction () =
  (* drain below source: the device conducts symmetrically *)
  let nl =
    C.Netlist.create
      [ vdc "vg" "g" "0" 1.8; vdc "vs" "s" "0" 1.0;
        E.Mosfet { name = "m1"; drain = "d"; gate = "g"; source = "s";
                   bulk = "0"; model = M.default_nmos; w = 10e-6; l = 1e-6;
                   mult = 1 };
        r "rd" "d" "0" 100.0 ]
  in
  let s = Dc.solve nl in
  (* source at 1 V drives current out of the drain into rd: vd between
     0 and 1 V *)
  let vd = Dc.voltage s "d" in
  Alcotest.(check bool) (Printf.sprintf "vd = %g in (0, 1)" vd) true
    (vd > 0.0 && vd < 1.0)

let test_dc_bridge_with_gmin_path () =
  (* a node connected only through capacitors still solves thanks to gmin *)
  let nl =
    C.Netlist.create
      [ vdc "v1" "in" "0" 1.0; c "c1" "in" "float" 1e-12;
        c "c2" "float" "0" 1e-12; r "r1" "in" "0" 1000.0 ]
  in
  let s = Dc.solve nl in
  Alcotest.(check bool) "floating node finite" true
    (Float.is_finite (Dc.voltage s "float"))

(* ------------------------------------------------------------------ *)
(* AC *)

let test_ac_rc_lowpass () =
  let rv = 1000.0 and cv = 1e-9 in
  let f3db = 1.0 /. (U.two_pi *. rv *. cv) in
  let nl =
    C.Netlist.create
      [ vac "v1" "in" "0" 1.0; r "r1" "in" "out" rv; c "c1" "out" "0" cv ]
  in
  let s = Ac.solve nl ~freq:f3db in
  check_close 0.01 "-3 dB at corner" (-3.0103) (Ac.magnitude_db s "out");
  let s10 = Ac.solve nl ~freq:(10.0 *. f3db) in
  check_close 0.2 "-20 dB/dec" (-20.04) (Ac.magnitude_db s10 "out")

let test_ac_lc_resonance () =
  let lv = 2e-9 and cv = 1.4e-12 in
  let f0 = 1.0 /. (U.two_pi *. sqrt (lv *. cv)) in
  let nl =
    C.Netlist.create
      [ E.Isource { name = "i1"; np = "0"; nn = "tank"; wave = W.dc 0.0;
                    ac_mag = 1.0e-3 };
        l "l1" "tank" "0" lv; c "c1" "tank" "0" cv;
        r "rp" "tank" "0" 500.0 ]
  in
  (* at resonance the tank is purely resistive: |v| = i * rp *)
  let s = Ac.solve nl ~freq:f0 in
  check_close 1e-3 "resonant magnitude" 0.5 (Complex.norm (Ac.voltage s "tank"));
  (* off resonance the magnitude drops *)
  let s_off = Ac.solve nl ~freq:(1.3 *. f0) in
  Alcotest.(check bool) "off-resonance lower" true
    (Complex.norm (Ac.voltage s_off "tank") < 0.3)

let common_source_bias vg =
  [ vdc "vdd" "vdd" "0" 1.8; vdc "vg" "g" "0" vg;
    E.Vsource { name = "vsig"; np = "gac"; nn = "g"; wave = W.dc 0.0;
                ac_mag = 1.0 };
    r "rd" "vdd" "d" 2000.0;
    E.Mosfet { name = "m1"; drain = "d"; gate = "gac"; source = "0";
               bulk = "0"; model = M.default_nmos; w = 20e-6; l = 1e-6;
               mult = 1 } ]

let test_ac_common_source_gain () =
  let nl = C.Netlist.create (common_source_bias 0.9) in
  let dc = Dc.solve nl in
  let op = Dc.mos_operating_point dc "m1" in
  let expected_gain = op.M.gm *. (1.0 /. ((1.0 /. 2000.0) +. op.M.gds)) in
  let s = Ac.solve ~dc nl ~freq:1.0e3 in
  let gain = Complex.norm (Ac.voltage s "d") in
  check_close (0.01 *. expected_gain) "gm * (RD || ro)" expected_gain gain;
  (* inverting stage: phase ~ 180 deg at low frequency *)
  Alcotest.(check bool) "inverting" true ((Ac.voltage s "d").Complex.re < 0.0)

let test_ac_backgate_transfer () =
  (* the paper's Figure 3 mechanism in miniature: drive the bulk, see
     gmb * (RD || ro) at the drain *)
  let nl =
    C.Netlist.create
      [ vdc "vdd" "vdd" "0" 1.8; vdc "vg" "g" "0" 0.9;
        E.Vsource { name = "vbulk"; np = "b"; nn = "0"; wave = W.dc 0.0;
                    ac_mag = 1.0 };
        r "rd" "vdd" "d" 2000.0;
        E.Mosfet { name = "m1"; drain = "d"; gate = "g"; source = "0";
                   bulk = "b"; model = M.default_nmos; w = 20e-6; l = 1e-6;
                   mult = 1 } ]
  in
  let dc = Dc.solve nl in
  let op = Dc.mos_operating_point dc "m1" in
  let expected = op.M.gmb *. (1.0 /. ((1.0 /. 2000.0) +. op.M.gds)) in
  let s = Ac.solve ~dc nl ~freq:1.0e3 in
  check_close (0.02 *. expected) "gmb * (RD || ro)" expected
    (Complex.norm (Ac.voltage s "d"))

let test_ac_sweep_shape () =
  let nl =
    C.Netlist.create
      [ vac "v1" "in" "0" 1.0; r "r1" "in" "out" 1000.0; c "c1" "out" "0" 1e-9 ]
  in
  let freqs = Sn_numerics.Sweep.logspace 1e3 1e9 25 in
  let points = Ac.sweep nl ~freqs ~nodes:[ "out" ] in
  let dbs = Ac.transfer_db points "out" in
  (* monotone decreasing magnitude for a first-order low-pass *)
  let ok = ref true in
  for i = 0 to Array.length dbs - 2 do
    if dbs.(i + 1) > dbs.(i) +. 1e-9 then ok := false
  done;
  Alcotest.(check bool) "monotone rolloff" true !ok;
  (* asymptotic slope -20 dB/dec *)
  let tail_f = Array.sub freqs 15 10 and tail_db = Array.sub dbs 15 10 in
  check_close 0.5 "tail slope"
    (-20.0)
    (Sn_numerics.Stats.slope_db_per_decade tail_f tail_db)

(* the merged VCO testchip deck (MOSFETs, varactors, inductor branches,
   substrate network, interconnect) and its operating point, shared by
   the sparse-engine tests below *)
let vco_fixture =
  lazy
    (let f = Snoise.Flow.build_vco Sn_testchip.Vco_chip.default ~vtune:0.0 in
     let nl = Snoise.Flow.vco_merged f in
     (nl, Dc.solve nl))

(* the sparse frequency-domain engine against the dense reference
   formulation, on the full VCO testchip deck (MOSFETs, varactors,
   inductor branches, substrate network) *)
let test_ac_sparse_matches_dense_vco () =
  let module VC = Sn_testchip.Vco_chip in
  let module Mna = Sn_engine.Mna in
  let module Sp = Sn_engine.Stamp_plan in
  let nl, dc = Lazy.force vco_fixture in
  let mna = Mna.build nl in
  let plan = Sp.build mna in
  let nodes = List.sort_uniq String.compare (List.map snd VC.sensitive_nodes) in
  let freqs = Sn_numerics.Sweep.logspace 1e6 1e10 9 in
  let points = Ac.sweep ~dc nl ~freqs ~nodes in
  Array.iteri
    (fun k (p : Ac.sweep_point) ->
      let omega = U.two_pi *. freqs.(k) in
      let a, rhs = Ac.system_of_plan plan dc ~omega in
      let x = Sn_numerics.Lu.Cplx.solve_matrix a rhs in
      List.iter
        (fun (node, v) ->
          let slot = Mna.node_slot mna node in
          let v_ref = if slot < 0 then Complex.zero else x.(slot) in
          let err = Complex.norm (Complex.sub v v_ref) in
          Alcotest.(check bool)
            (Printf.sprintf "%s @ %.3g Hz (err %.2e)" node freqs.(k) err)
            true
            (err <= 1e-9 *. Float.max 1.0 (Complex.norm v_ref)))
        p.Ac.values)
    points

(* parallel sweeps must be byte-identical to sequential ones, and a
   whole sweep must run on a single symbolic factorization *)
let test_ac_sweep_parallel_identical () =
  let module VC = Sn_testchip.Vco_chip in
  let module Pool = Sn_engine.Pool in
  let module Splu = Sn_numerics.Splu in
  let nl, dc = Lazy.force vco_fixture in
  let nodes = List.sort_uniq String.compare (List.map snd VC.sensitive_nodes) in
  let freqs = Sn_numerics.Sweep.logspace 1e5 1e9 33 in
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs (Pool.env_jobs ()))
    (fun () ->
      Pool.set_default_jobs 1;
      Splu.reset_stats ();
      let seq = Ac.sweep ~dc nl ~freqs ~nodes in
      Alcotest.(check int) "one master factorization"
        1 (Splu.factorizations ());
      Pool.set_default_jobs 4;
      let par = Ac.sweep ~dc nl ~freqs ~nodes in
      Alcotest.(check bool) "jobs=4 byte-identical to jobs=1" true (seq = par))

(* ------------------------------------------------------------------ *)
(* Transient *)

let test_tran_rc_step () =
  let rv = 1000.0 and cv = 1e-6 in
  let tau = rv *. cv in
  let nl =
    C.Netlist.create
      [ E.Vsource { name = "v1"; np = "in"; nn = "0";
                    wave = W.pulse ~v1:0.0 ~v2:1.0 ~width:1.0 ~period:2.0 ();
                    ac_mag = 0.0 };
        r "r1" "in" "out" rv; c "c1" "out" "0" cv ]
  in
  let opts = { Tran.default_options with Tran.ic = Tran.Uic [] } in
  let d = Tran.simulate ~options:opts ~tstop:(5.0 *. tau) ~dt:(tau /. 200.0) nl in
  let out = Tran.node d "out" in
  let analytic t = 1.0 -. exp (-.t /. tau) in
  let max_err = ref 0.0 in
  Array.iteri
    (fun k t ->
      max_err := Float.max !max_err (Float.abs (out.(k) -. analytic t)))
    d.Tran.times;
  Alcotest.(check bool)
    (Printf.sprintf "max error %.4f < 1%%" !max_err)
    true (!max_err < 0.01)

let test_tran_sine_steady_state () =
  let nl =
    C.Netlist.create
      [ E.Vsource { name = "v1"; np = "in"; nn = "0";
                    wave = W.sin_wave ~amplitude:1.0 ~freq:1.0e3 ();
                    ac_mag = 0.0 };
        r "r1" "in" "out" 1000.0; r "r2" "out" "0" 1000.0 ]
  in
  let d = Tran.simulate ~tstop:4e-3 ~dt:1e-6 nl in
  let out = Tran.samples_after d ~t0:1e-3 "out" in
  let amp = Goertzel.amplitude ~fs:1e6 ~f:1e3 out in
  check_close 1e-3 "resistive divider of sine" 0.5 amp

let test_tran_lc_ringdown_frequency () =
  (* start the tank charged (UIC) and measure the ring frequency *)
  let lv = 1e-6 and cv = 1e-9 in
  let f0 = 1.0 /. (U.two_pi *. sqrt (lv *. cv)) in
  let nl =
    C.Netlist.create
      [ l "l1" "tank" "0" lv; c "c1" "tank" "0" cv;
        r "rp" "tank" "0" 100e3 ]
  in
  let opts =
    { Tran.default_options with Tran.ic = Tran.Uic [ ("tank", 1.0) ] }
  in
  let periods = 40.0 in
  let dt = 1.0 /. (f0 *. 200.0) in
  let d = Tran.simulate ~options:opts ~tstop:(periods /. f0) ~dt nl in
  let w = Tran.node d "tank" in
  let fs = 1.0 /. dt in
  let spec = Sn_numerics.Fft.amplitude_spectrum ~fs w in
  let fpk, _ = Sn_numerics.Fft.peak_near spec ~f:f0 ~span:(0.2 *. f0) in
  check_close (0.02 *. f0) "ring frequency" f0 fpk

let test_tran_trapezoidal_beats_be () =
  (* integrate one sine period; trapezoidal should track the divider
     more accurately than backward Euler on the RC corner *)
  let rv = 1000.0 and cv = 1e-6 in
  let f = 1.0 /. (U.two_pi *. rv *. cv) in
  let nl =
    C.Netlist.create
      [ E.Vsource { name = "v1"; np = "in"; nn = "0";
                    wave = W.sin_wave ~amplitude:1.0 ~freq:f ();
                    ac_mag = 0.0 };
        r "r1" "in" "out" rv; c "c1" "out" "0" cv ]
  in
  let run method_ =
    let opts = { Tran.default_options with Tran.method_ } in
    let d = Tran.simulate ~options:opts ~tstop:(4.0 /. f) ~dt:(0.02 /. f) nl in
    let out = Tran.samples_after d ~t0:(2.0 /. f) "out" in
    let fs = f /. 0.02 in
    Goertzel.amplitude ~fs ~f out
  in
  let target = 1.0 /. sqrt 2.0 in
  let err_be = Float.abs (run Tran.Backward_euler -. target) in
  let err_trap = Float.abs (run Tran.Trapezoidal -. target) in
  Alcotest.(check bool)
    (Printf.sprintf "trap %.5f < be %.5f" err_trap err_be)
    true (err_trap < err_be)

let test_tran_varactor_modulates () =
  (* a varactor driven through a resistor charges like an RC with
     voltage-dependent C: final value still reaches the source *)
  let nl =
    C.Netlist.create
      [ E.Vsource { name = "v1"; np = "in"; nn = "0";
                    wave = W.pulse ~v1:0.0 ~v2:1.0 ~width:1.0 ~period:2.0 ();
                    ac_mag = 0.0 };
        r "r1" "in" "out" 10e3;
        E.Varactor { name = "y1"; n1 = "out"; n2 = "0";
                     model = C.Varactor_model.default; mult = 1 } ]
  in
  let opts = { Tran.default_options with Tran.ic = Tran.Uic [] } in
  let d = Tran.simulate ~options:opts ~tstop:1e-6 ~dt:1e-9 nl in
  let out = Tran.node d "out" in
  let final = out.(Array.length out - 1) in
  check_close 0.01 "settles to source" 1.0 final;
  (* monotone rise *)
  let ok = ref true in
  for i = 0 to Array.length out - 2 do
    if out.(i + 1) < out.(i) -. 1e-9 then ok := false
  done;
  Alcotest.(check bool) "monotone charge-up" true !ok

let test_tran_adaptive_rc () =
  (* adaptive stepping matches the analytic RC response and uses fewer
     points than the equivalent fine fixed grid *)
  let rv = 1000.0 and cv = 1e-6 in
  let tau = rv *. cv in
  let nl =
    C.Netlist.create
      [ E.Vsource { name = "v1"; np = "in"; nn = "0";
                    wave = W.pulse ~v1:0.0 ~v2:1.0 ~width:1.0 ~period:2.0 ();
                    ac_mag = 0.0 };
        r "r1" "in" "out" rv; c "c1" "out" "0" cv ]
  in
  let opts = { Tran.default_options with Tran.ic = Tran.Uic [] } in
  let d =
    Tran.simulate_adaptive ~options:opts ~lte_tol:1e-5 ~tstop:(5.0 *. tau)
      ~dt:(tau /. 50.0) nl
  in
  let out = Tran.node d "out" in
  let analytic t = 1.0 -. exp (-.t /. tau) in
  let max_err = ref 0.0 in
  Array.iteri
    (fun k t ->
      max_err := Float.max !max_err (Float.abs (out.(k) -. analytic t)))
    d.Tran.times;
  Alcotest.(check bool)
    (Printf.sprintf "adaptive error %.5f < 1%%" !max_err)
    true (!max_err < 0.01);
  (* monotone, non-uniform time axis *)
  let dts =
    Array.init (Array.length d.Tran.times - 1) (fun k ->
        d.Tran.times.(k + 1) -. d.Tran.times.(k))
  in
  Alcotest.(check bool) "monotone time" true (Array.for_all (fun h -> h > 0.0) dts);
  Alcotest.(check bool) "step actually adapts" true
    (Sn_numerics.Stats.max_abs dts > 1.5 *. (tau /. 50.0))

let test_tran_adaptive_grows_on_quiet () =
  (* a pure resistive divider lets the step grow to dt_max *)
  let nl =
    C.Netlist.create
      [ vdc "v1" "in" "0" 1.0; r "r1" "in" "out" 1.0e3; r "r2" "out" "0" 1.0e3 ]
  in
  let d = Tran.simulate_adaptive ~dt_max:8e-3 ~tstop:0.1 ~dt:1e-3 nl in
  Alcotest.(check bool) "few points" true (Array.length d.Tran.times < 40)

let test_tran_to_csv () =
  let nl =
    C.Netlist.create [ vdc "v1" "a" "0" 2.0; r "r1" "a" "0" 1.0e3 ]
  in
  let d = Tran.simulate ~tstop:1e-3 ~dt:5e-4 nl in
  let csv = Tran.to_csv d in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 3 points" 4 (List.length lines);
  (match lines with
   | header :: _ -> Alcotest.(check string) "header" "time,a" header
   | [] -> Alcotest.fail "empty csv");
  Alcotest.(check bool) "value present" true
    (List.exists (fun l ->
         String.length l > 2 && String.sub l (String.length l - 1) 1 = "2")
       (List.tl lines))

(* ------------------------------------------------------------------ *)
(* Noise *)

module Noise = Sn_engine.Noise

let test_noise_resistor_divider () =
  (* two equal resistors to ground: output noise = 4kT (R/2) *)
  let rv = 10.0e3 in
  let nl =
    C.Netlist.create
      [ vdc "v1" "in" "0" 1.0; r "r1" "in" "out" rv; r "r2" "out" "0" rv ]
  in
  let pts = Noise.analyze nl ~output:"out" ~freqs:[| 1.0e3 |] in
  let expected = 4.0 *. 1.380649e-23 *. 300.0 *. (rv /. 2.0) in
  match pts with
  | [ p ] ->
    check_close (0.01 *. expected) "4kT(R||R)" expected p.Noise.total_psd;
    (* both resistors contribute equally *)
    (match p.Noise.contributions with
     | [ a; b ] -> check_close (0.01 *. a.Noise.psd) "equal split" a.Noise.psd b.Noise.psd
     | _ -> Alcotest.fail "expected 2 contributions")
  | _ -> Alcotest.fail "expected 1 point"

let test_noise_ktc () =
  (* integrated noise of an RC filter is kT/C, independent of R *)
  let check_ktc rv cv =
    let f3db = 1.0 /. (U.two_pi *. rv *. cv) in
    let nl =
      C.Netlist.create
        [ vdc "v1" "in" "0" 1.0; r "r1" "in" "out" rv; c "c1" "out" "0" cv ]
    in
    let freqs = Sn_numerics.Sweep.logspace (f3db /. 1000.0) (1000.0 *. f3db) 400 in
    let pts = Noise.analyze nl ~output:"out" ~freqs in
    let v_rms = Noise.total_rms pts in
    let expected = sqrt (1.380649e-23 *. 300.0 /. cv) in
    Alcotest.(check bool)
      (Printf.sprintf "kT/C: %.3g vs %.3g" v_rms expected)
      true
      (Float.abs (v_rms -. expected) /. expected < 0.05)
  in
  check_ktc 1.0e3 1.0e-12;
  check_ktc 1.0e6 1.0e-12

let test_noise_mos_channel () =
  (* a biased common-source stage adds 4kT gamma gm |RD||ro|^2 *)
  let nl = C.Netlist.create (common_source_bias 0.9) in
  let dc = Dc.solve nl in
  let op = Dc.mos_operating_point dc "m1" in
  let r_out = 1.0 /. ((1.0 /. 2000.0) +. op.M.gds) in
  let expected_mos =
    4.0 *. 1.380649e-23 *. 300.0 *. (2.0 /. 3.0) *. op.M.gm *. r_out *. r_out
  in
  let pts = Noise.analyze ~dc nl ~output:"d" ~freqs:[| 1.0e3 |] in
  match pts with
  | [ p ] ->
    let mos_contrib =
      List.find (fun c -> c.Noise.element = "m1") p.Noise.contributions
    in
    check_close (0.03 *. expected_mos) "channel noise" expected_mos
      mos_contrib.Noise.psd
  | _ -> Alcotest.fail "expected 1 point"

let test_noise_filtered_rolloff () =
  (* beyond the RC corner the PSD falls 20 dB/dec *)
  let nl =
    C.Netlist.create
      [ vdc "v1" "in" "0" 1.0; r "r1" "in" "out" 1.0e3; c "c1" "out" "0" 1.0e-9 ]
  in
  let f3db = 1.0 /. (U.two_pi *. 1.0e3 *. 1.0e-9) in
  let pts =
    Noise.analyze nl ~output:"out" ~freqs:[| 10.0 *. f3db; 100.0 *. f3db |]
  in
  match pts with
  | [ a; b ] ->
    let drop = 10.0 *. log10 (a.Noise.total_psd /. b.Noise.total_psd) in
    check_close 0.3 "20 dB/dec in power" 20.0 drop
  | _ -> Alcotest.fail "expected 2 points"

(* the adjoint transfer (one transpose solve on the shared
   factorization) against brute force: one dense forward solve per
   noise source *)
let test_noise_adjoint_matches_bruteforce () =
  let module Mna = Sn_engine.Mna in
  let module Sp = Sn_engine.Stamp_plan in
  let nl = C.Netlist.create (common_source_bias 0.9) in
  let dc = Dc.solve nl in
  let mna = Mna.build nl in
  let plan = Sp.build mna in
  let freq = 2.5e6 in
  let p =
    match Noise.analyze ~dc nl ~output:"d" ~freqs:[| freq |] with
    | [ p ] -> p
    | _ -> Alcotest.fail "expected 1 point"
  in
  let a, _ = Ac.system_of_plan plan dc ~omega:(U.two_pi *. freq) in
  let out_slot = Mna.node_slot mna "d" in
  let four_kt = 4.0 *. 1.380649e-23 *. 300.0 in
  let sources =
    List.filter_map
      (fun e ->
        match e with
        | E.Resistor { name; n1; n2; ohms } ->
          Some (name, n1, n2, four_kt /. ohms)
        | E.Mosfet { name; drain; source; mult; _ } ->
          let op = Dc.mos_operating_point dc name in
          let gm = float_of_int mult *. op.M.gm in
          if gm > 0.0 then
            Some (name, drain, source, four_kt *. (2.0 /. 3.0) *. gm)
          else None
        | _ -> None)
      (C.Netlist.elements nl)
  in
  Alcotest.(check int) "every source contributes"
    (List.length sources)
    (List.length p.Noise.contributions);
  List.iter
    (fun (name, np, nn, psd_i) ->
      let rhs = Array.make (Mna.dim mna) Complex.zero in
      let add n v =
        let s = Mna.node_slot mna n in
        if s >= 0 then
          rhs.(s) <- Complex.add rhs.(s) { Complex.re = v; im = 0.0 }
      in
      add np 1.0;
      add nn (-1.0);
      let x = Sn_numerics.Lu.Cplx.solve_matrix a rhs in
      let vout = if out_slot < 0 then Complex.zero else x.(out_slot) in
      let expected = Complex.norm2 vout *. psd_i in
      let got =
        (List.find (fun c -> c.Noise.element = name) p.Noise.contributions)
          .Noise.psd
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s adjoint vs forward" name)
        true
        (Float.abs (got -. expected) <= 1e-9 *. Float.max expected 1e-30))
    sources

(* ------------------------------------------------------------------ *)
(* Two-port S-parameters *)

module Twoport = Sn_engine.Twoport

let test_sparams_through () =
  (* a direct through connection: S21 = 1, S11 = 0 *)
  let nl = C.Netlist.create [ r "rthru" "p1" "p2" 1e-6; r "rld" "p1" "0" 1e12 ] in
  match Twoport.analyze nl ~port1:"p1" ~port2:"p2" ~freqs:[| 1.0e6 |] with
  | [ s ] ->
    check_close 1e-3 "S21 = 1" 1.0 (Complex.norm s.Twoport.s21);
    Alcotest.(check bool) "S11 ~ 0" true (Complex.norm s.Twoport.s11 < 1e-3)
  | _ -> Alcotest.fail "expected one point"

let test_sparams_series_resistor () =
  (* series R between 50-ohm ports: S21 = 2 z0 / (2 z0 + R) *)
  let rv = 100.0 in
  let nl = C.Netlist.create [ r "rs" "p1" "p2" rv; r "rld" "p1" "0" 1e12 ] in
  match Twoport.analyze nl ~port1:"p1" ~port2:"p2" ~freqs:[| 1.0e6 |] with
  | [ s ] ->
    let expected = 2.0 *. 50.0 /. ((2.0 *. 50.0) +. rv) in
    check_close 1e-6 "S21 attenuator" expected (Complex.norm s.Twoport.s21);
    (* reciprocity of a passive network *)
    check_close 1e-9 "S12 = S21" (Complex.norm s.Twoport.s21)
      (Complex.norm s.Twoport.s12);
    (* matched-ish: S11 = R / (R + 2 z0) *)
    check_close 1e-6 "S11" (rv /. (rv +. 100.0)) (Complex.norm s.Twoport.s11)
  | _ -> Alcotest.fail "expected one point"

let test_sparams_isolation_of_substrate_model () =
  (* substrate macromodel between two contacts: a passive resistive
     network with reciprocal S21 = S12 and finite isolation *)
  let module G = Sn_geometry in
  let module Port = Sn_substrate.Port in
  let a = Port.v ~name:"p1" ~kind:Port.Resistive [ G.Rect.make 10.0 45.0 20.0 55.0 ] in
  let b = Port.v ~name:"p2" ~kind:Port.Resistive [ G.Rect.make 70.0 45.0 80.0 55.0 ] in
  let cfg = { Sn_substrate.Grid.nx = 20; ny = 20; z_per_layer = Some [1;2;2;1] } in
  let m =
    Sn_substrate.Extractor.extract ~config:cfg ~tech:Sn_tech.Tech.imec018
      ~die:(G.Rect.make 0.0 0.0 100.0 100.0) [ a; b ]
  in
  let nl =
    C.Netlist.create
      (Snoise.Merge.of_macromodel m
      @ [ r "rref" "p1" "0" 1.0e12 ])
  in
  match Twoport.analyze nl ~port1:"p1" ~port2:"p2" ~freqs:[| 1.0e6 |] with
  | [ s ] ->
    let iso = Twoport.isolation_db s in
    Alcotest.(check bool)
      (Printf.sprintf "isolation %.1f dB plausible" iso)
      true (iso > 3.0 && iso < 80.0);
    check_close 1e-9 "reciprocal" (Complex.norm s.Twoport.s21)
      (Complex.norm s.Twoport.s12)
  | _ -> Alcotest.fail "expected one point"

let test_tran_invalid_args () =
  let nl = C.Netlist.create [ r "r1" "a" "0" 1.0; vdc "v1" "a" "0" 1.0 ] in
  Alcotest.check_raises "bad dt"
    (Invalid_argument "Tran.simulate: tstop and dt must be > 0") (fun () ->
      ignore (Tran.simulate ~tstop:1.0 ~dt:0.0 nl))

let test_dc_op_report () =
  let nl = C.Netlist.create (common_source_bias 0.9) in
  let s = Dc.solve nl in
  let text = Format.asprintf "%a" Dc.pp s in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("report mentions " ^ needle) true
        (let n = String.length text and m = String.length needle in
         let rec go i = i + m <= n && (String.sub text i m = needle || go (i + 1)) in
         go 0))
    [ "operating point"; "v(d"; "m1"; "saturation"; "i(vdd" ]

(* ------------------------------------------------------------------ *)
(* property-based engine checks *)

let random_ladder st n =
  (* a ladder of n series resistors with shunt resistors to ground *)
  let series =
    List.init n (fun k ->
        r (Printf.sprintf "rs%d" k)
          (if k = 0 then "in" else Printf.sprintf "n%d" k)
          (Printf.sprintf "n%d" (k + 1))
          (10.0 +. Random.State.float st 1000.0))
  in
  let shunts =
    List.init n (fun k ->
        r (Printf.sprintf "rp%d" k)
          (Printf.sprintf "n%d" (k + 1))
          "0"
          (10.0 +. Random.State.float st 1000.0))
  in
  series @ shunts

let prop_dc_superposition =
  QCheck.Test.make ~count:40 ~name:"DC superposition on random ladders"
    QCheck.(pair (int_range 1 6) (int_range 0 1000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; n |] in
      let ladder = random_ladder st n in
      let v1 = 1.0 +. Random.State.float st 5.0 in
      let i2 = Random.State.float st 1e-3 in
      let probe = Printf.sprintf "n%d" n in
      let solve src_v src_i =
        let nl =
          C.Netlist.create
            (ladder
            @ [ vdc "v1" "in" "0" src_v;
                E.Isource { name = "i2"; np = "0"; nn = probe;
                            wave = W.dc src_i; ac_mag = 0.0 } ])
        in
        Dc.voltage (Dc.solve nl) probe
      in
      let both = solve v1 i2 in
      let only_v = solve v1 0.0 in
      let only_i = solve 0.0 i2 in
      Float.abs (both -. (only_v +. only_i)) < 1e-7 *. (Float.abs both +. 1.0))

let prop_ac_passive_divider_bounded =
  QCheck.Test.make ~count:40 ~name:"passive RC transfer never exceeds 1"
    QCheck.(triple (int_range 1 5) (int_range 0 1000) (float_range 2.0 8.0))
    (fun (n, seed, logf) ->
      let st = Random.State.make [| seed; n; 7 |] in
      let ladder = random_ladder st n in
      let caps =
        List.init n (fun k ->
            c (Printf.sprintf "c%d" k)
              (Printf.sprintf "n%d" (k + 1))
              "0"
              (1e-12 +. Random.State.float st 1e-9))
      in
      let nl = C.Netlist.create (vac "v1" "in" "0" 1.0 :: ladder @ caps) in
      let s = Ac.solve nl ~freq:(10.0 ** logf) in
      let probe = Printf.sprintf "n%d" n in
      Complex.norm (Ac.voltage s probe) <= 1.0 +. 1e-9)

let prop_resistive_network_reciprocity =
  QCheck.Test.make ~count:40 ~name:"resistive network reciprocity"
    QCheck.(pair (int_range 2 6) (int_range 0 1000))
    (fun (n, seed) ->
      (* transfer impedance v(b)/i(a) = v(a)/i(b) *)
      let st = Random.State.make [| seed; n; 13 |] in
      let ladder = random_ladder st n in
      let inject at =
        let nl =
          C.Netlist.create
            (ladder
            @ [ E.Isource { name = "ii"; np = "0"; nn = at;
                            wave = W.dc 1e-3; ac_mag = 0.0 } ])
        in
        Dc.solve nl
      in
      let a = "n1" and b = Printf.sprintf "n%d" n in
      let fwd = Dc.voltage (inject a) b in
      let rev = Dc.voltage (inject b) a in
      Float.abs (fwd -. rev) < 1e-9 *. (Float.abs fwd +. 1e-12))

(* ------------------------------------------------------------------ *)
(* optimized hot path: the linear fast path must reproduce the Newton
   path exactly, and a linear fixed-step run must factor exactly once *)

module Splu = Sn_numerics.Splu

(* RLC ladder: linear, with an inductor branch row, sized by [stages]
   so both the dense and the sparse assembler paths get covered *)
let ladder_netlist ~stages =
  let node k = if k = 0 then "0" else Printf.sprintf "n%d" k in
  let elements =
    E.Vsource
      { name = "vin"; np = "drive"; nn = "0";
        wave = W.sin_wave ~amplitude:1.0 ~freq:20.0e6 (); ac_mag = 0.0 }
    :: l "lin" "drive" (node 1) 5.0e-9
    :: List.concat
         (List.init stages (fun k ->
              let k = k + 1 in
              [ r (Printf.sprintf "r%d" k) (node k) (node (k + 1))
                  (50.0 +. float_of_int k);
                c (Printf.sprintf "c%d" k) (node (k + 1)) "0" 2.0e-12 ]))
  in
  C.Netlist.create ~title:"RLC ladder" elements

let test_tran_fast_path_matches_newton () =
  List.iter
    (fun stages ->
      let nl = ladder_netlist ~stages in
      let run fast =
        Tran.simulate
          ~options:
            { Tran.default_options with
              Tran.ic = Tran.Uic [];
              linear_fast_path = fast }
          ~tstop:1.0e-7 ~dt:1.0e-9 nl
      in
      let fast = run true and newton = run false in
      let max_diff = ref 0.0 in
      Array.iteri
        (fun row wave ->
          Array.iteri
            (fun k v ->
              max_diff :=
                Float.max !max_diff
                  (Float.abs (v -. newton.Tran.data.(row).(k))))
            wave)
        fast.Tran.data;
      Alcotest.(check bool)
        (Printf.sprintf "stages=%d max diff %.3e" stages !max_diff)
        true
        (!max_diff < 1e-9))
    [ 6; 80 ]

let test_tran_single_factorization () =
  (* 80 stages puts the system well past the dense crossover; Uic skips
     the DC solve so the transient owns every counted factorization *)
  let nl = ladder_netlist ~stages:80 in
  Splu.reset_stats ();
  let d =
    Tran.simulate
      ~options:{ Tran.default_options with Tran.ic = Tran.Uic [] }
      ~tstop:1.0e-7 ~dt:1.0e-9 nl
  in
  Alcotest.(check int) "one LU factorization" 1 (Splu.factorizations ());
  Alcotest.(check int) "no refactorizations" 0 (Splu.refactorizations ());
  Alcotest.(check bool)
    (Printf.sprintf "one solve per step (%d solves, %d steps)"
       (Splu.solves ())
       (Array.length d.Tran.times - 1))
    true
    (Splu.solves () = Array.length d.Tran.times - 1)

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "engine.dc",
      [
        Alcotest.test_case "divider" `Quick test_dc_divider;
        Alcotest.test_case "current source" `Quick test_dc_current_source;
        Alcotest.test_case "inductor short" `Quick test_dc_inductor_short;
        Alcotest.test_case "capacitor open" `Quick test_dc_capacitor_open;
        Alcotest.test_case "vcvs" `Quick test_dc_vcvs;
        Alcotest.test_case "vccs" `Quick test_dc_vccs;
        Alcotest.test_case "diode-connected nmos" `Quick
          test_dc_diode_connected_nmos;
        Alcotest.test_case "pmos polarity" `Quick test_dc_pmos_mirror_polarity;
        Alcotest.test_case "reverse conduction" `Quick
          test_dc_mos_reverse_conduction;
        Alcotest.test_case "gmin rescues floating node" `Quick
          test_dc_bridge_with_gmin_path;
      ] );
    ( "engine.ac",
      [
        Alcotest.test_case "rc low-pass corner" `Quick test_ac_rc_lowpass;
        Alcotest.test_case "lc resonance" `Quick test_ac_lc_resonance;
        Alcotest.test_case "common-source gain" `Quick
          test_ac_common_source_gain;
        Alcotest.test_case "back-gate transfer" `Quick
          test_ac_backgate_transfer;
        Alcotest.test_case "sweep rolloff" `Quick test_ac_sweep_shape;
        Alcotest.test_case "sparse engine matches dense on VCO deck" `Quick
          test_ac_sparse_matches_dense_vco;
        Alcotest.test_case "parallel sweep byte-identical" `Quick
          test_ac_sweep_parallel_identical;
      ] );
    ( "engine.tran",
      [
        Alcotest.test_case "rc step response" `Quick test_tran_rc_step;
        Alcotest.test_case "sine steady state" `Quick
          test_tran_sine_steady_state;
        Alcotest.test_case "lc ring frequency" `Quick
          test_tran_lc_ringdown_frequency;
        Alcotest.test_case "trap beats BE" `Quick
          test_tran_trapezoidal_beats_be;
        Alcotest.test_case "varactor charging" `Quick
          test_tran_varactor_modulates;
        Alcotest.test_case "adaptive RC accuracy" `Quick test_tran_adaptive_rc;
        Alcotest.test_case "adaptive grows when quiet" `Quick
          test_tran_adaptive_grows_on_quiet;
        Alcotest.test_case "csv export" `Quick test_tran_to_csv;
        Alcotest.test_case "fast path matches Newton path" `Quick
          test_tran_fast_path_matches_newton;
        Alcotest.test_case "linear fixed step factors once" `Quick
          test_tran_single_factorization;
      ] );
    ( "engine.twoport",
      [
        Alcotest.test_case "through" `Quick test_sparams_through;
        Alcotest.test_case "series attenuator" `Quick
          test_sparams_series_resistor;
        Alcotest.test_case "substrate isolation" `Quick
          test_sparams_isolation_of_substrate_model;
      ] );
    ( "engine.noise",
      [
        Alcotest.test_case "resistor divider 4kT(R||R)" `Quick
          test_noise_resistor_divider;
        Alcotest.test_case "kT/C integral" `Quick test_noise_ktc;
        Alcotest.test_case "MOS channel noise" `Quick test_noise_mos_channel;
        Alcotest.test_case "adjoint matches brute force" `Quick
          test_noise_adjoint_matches_bruteforce;
        Alcotest.test_case "filtered rolloff" `Quick
          test_noise_filtered_rolloff;
        Alcotest.test_case "argument validation" `Quick test_tran_invalid_args;
      ] );
    ( "engine.report",
      [ Alcotest.test_case "op printout" `Quick test_dc_op_report ] );
    ( "engine.properties",
      [
        qcheck prop_dc_superposition;
        qcheck prop_ac_passive_divider_bounded;
        qcheck prop_resistive_network_reciprocity;
      ] );
  ]
