(* Tests for the sn_numerics library. *)

module Units = Sn_numerics.Units
module Vec = Sn_numerics.Vec
module Mat = Sn_numerics.Mat
module Lu = Sn_numerics.Lu
module Sparse = Sn_numerics.Sparse
module Splu = Sn_numerics.Splu
module Heap = Sn_numerics.Heap
module Cg = Sn_numerics.Cg
module Fft = Sn_numerics.Fft
module Goertzel = Sn_numerics.Goertzel
module Sweep = Sn_numerics.Sweep
module Stats = Sn_numerics.Stats
module Rootfind = Sn_numerics.Rootfind

let check_float = Alcotest.(check (float 1e-9))
let check_close tol = Alcotest.(check (float tol))

(* ------------------------------------------------------------------ *)
(* Units *)

let test_db_roundtrip () =
  check_float "20 dB is ratio 10" 10.0 (Units.ratio_of_db 20.0);
  check_float "ratio 10 is 20 dB" 20.0 (Units.db_of_ratio 10.0);
  check_float "power ratio 100 is 20 dB" 20.0 (Units.db_of_power_ratio 100.0);
  check_float "0 dBm is 1 mW" 1.0e-3 (Units.watts_of_dbm 0.0)

let test_dbm_of_vpeak () =
  (* 0.316 Vpeak into 50 ohm = 1 mW = 0 dBm *)
  let v = sqrt (2.0 *. 50.0 *. 1.0e-3) in
  check_close 1e-9 "0 dBm peak voltage" 0.0 (Units.dbm_of_vpeak v);
  check_close 1e-9 "round trip" v (Units.vpeak_of_dbm 0.0)

let test_minus5dbm () =
  (* the paper's injected tone: -5 dBm into 50 ohm is ~0.178 Vpeak *)
  let v = Units.vpeak_of_dbm (-5.0) in
  check_close 1e-3 "-5 dBm Vpeak" 0.1778 v

let test_db_invalid () =
  Alcotest.check_raises "db_of_ratio 0" (Invalid_argument
    "Units.db_of_ratio: argument must be > 0 (got 0)")
    (fun () -> ignore (Units.db_of_ratio 0.0))

let test_eng_format () =
  Alcotest.(check string) "GHz" "3.00 GHz" (Units.eng ~unit:"Hz" 3.0e9);
  Alcotest.(check string) "fF" "120.00 fF" (Units.eng ~unit:"F" 120.0e-15);
  Alcotest.(check string) "mS" "38.00 mS" (Units.eng ~unit:"S" 38.0e-3)

(* ------------------------------------------------------------------ *)
(* Vec / Mat *)

let test_vec_ops () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 4.0; 5.0; 6.0 |] in
  check_float "dot" 32.0 (Vec.dot a b);
  check_float "norm2" (sqrt 14.0) (Vec.norm2 a);
  check_float "norm_inf" 3.0 (Vec.norm_inf a);
  Alcotest.(check (array (float 1e-12))) "add" [| 5.0; 7.0; 9.0 |] (Vec.add a b);
  Alcotest.(check (array (float 1e-12))) "sub" [| -3.0; -3.0; -3.0 |] (Vec.sub a b);
  let y = Vec.copy b in
  Vec.axpy 2.0 a y;
  Alcotest.(check (array (float 1e-12))) "axpy" [| 6.0; 9.0; 12.0 |] y

let test_vec_mismatch () =
  Alcotest.check_raises "dot mismatch"
    (Invalid_argument "Vec.dot: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vec.dot [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |]))

let test_mat_mul () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Mat.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Mat.mul a b in
  check_float "c00" 19.0 (Mat.get c 0 0);
  check_float "c01" 22.0 (Mat.get c 0 1);
  check_float "c10" 43.0 (Mat.get c 1 0);
  check_float "c11" 50.0 (Mat.get c 1 1)

let test_mat_identity () =
  let a = Mat.init 4 4 (fun i j -> float_of_int ((3 * i) + j + 1)) in
  let i4 = Mat.identity 4 in
  check_float "A*I = A" 0.0 (Mat.max_abs_diff a (Mat.mul a i4));
  check_float "I*A = A" 0.0 (Mat.max_abs_diff a (Mat.mul i4 a))

let test_mat_transpose () =
  let a = Mat.init 2 3 (fun i j -> float_of_int ((10 * i) + j)) in
  let t = Mat.transpose a in
  Alcotest.(check int) "rows" 3 (Mat.rows t);
  Alcotest.(check int) "cols" 2 (Mat.cols t);
  check_float "t(2,1)" 12.0 (Mat.get t 2 1)

let test_mat_symmetry () =
  let s = Mat.of_arrays [| [| 2.0; -1.0 |]; [| -1.0; 2.0 |] |] in
  Alcotest.(check bool) "symmetric" true (Mat.is_symmetric s);
  Mat.set s 0 1 5.0;
  Alcotest.(check bool) "asymmetric" false (Mat.is_symmetric s)

(* ------------------------------------------------------------------ *)
(* LU *)

let test_lu_solve_known () =
  let a = Mat.of_arrays [| [| 4.0; 3.0 |]; [| 6.0; 3.0 |] |] in
  let x = Lu.solve_mat a [| 10.0; 12.0 |] in
  check_close 1e-9 "x0" 1.0 x.(0);
  check_close 1e-9 "x1" 2.0 x.(1)

let test_lu_singular () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" (Lu.Singular 1) (fun () ->
      ignore (Lu.solve_mat a [| 1.0; 1.0 |]))

let test_lu_invert () =
  let a = Mat.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let ainv = Lu.invert_mat a in
  check_close 1e-12 "A * A^-1 = I" 0.0
    (Mat.max_abs_diff (Mat.mul a ainv) (Mat.identity 2))

let test_lu_pivoting () =
  (* zero on the diagonal requires pivoting *)
  let a = Mat.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Lu.solve_mat a [| 3.0; 7.0 |] in
  check_close 1e-12 "x0" 7.0 x.(0);
  check_close 1e-12 "x1" 3.0 x.(1)

let test_lu_complex () =
  (* (1 + i) x = 2i  ->  x = 1 + i *)
  let a = [| [| { Complex.re = 1.0; im = 1.0 } |] |] in
  let b = [| { Complex.re = 0.0; im = 2.0 } |] in
  let x = Lu.Cplx.solve_matrix a b in
  check_close 1e-12 "re" 1.0 x.(0).Complex.re;
  check_close 1e-12 "im" 1.0 x.(0).Complex.im

let test_lu_complex_det () =
  let i = { Complex.re = 0.0; im = 1.0 } in
  let a = [| [| i; Complex.zero |]; [| Complex.zero; i |] |] in
  let d = Lu.Cplx.det (Lu.Cplx.decompose a) in
  (* i * i = -1 *)
  check_close 1e-12 "det re" (-1.0) d.Complex.re;
  check_close 1e-12 "det im" 0.0 d.Complex.im

let prop_lu_random_solve =
  QCheck.Test.make ~count:100 ~name:"LU solves random well-conditioned systems"
    QCheck.(pair (int_range 1 12) (int_range 0 10000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; n |] in
      let a =
        Mat.init n n (fun i j ->
            (if i = j then float_of_int n else 0.0)
            +. Random.State.float st 1.0)
      in
      let x_true = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
      let b = Mat.mul_vec a x_true in
      let x = Lu.solve_mat a b in
      Vec.max_abs_diff x x_true < 1e-8)

(* ------------------------------------------------------------------ *)
(* Sparse / CG *)

let laplacian_1d n =
  (* tridiagonal [-1 2 -1] grounded Laplacian: SPD *)
  let b = Sparse.builder n n in
  for i = 0 to n - 1 do
    Sparse.add b i i 2.0;
    if i > 0 then Sparse.add b i (i - 1) (-1.0);
    if i < n - 1 then Sparse.add b i (i + 1) (-1.0)
  done;
  Sparse.finalize b

let test_sparse_build () =
  let b = Sparse.builder 3 3 in
  Sparse.add b 0 0 1.0;
  Sparse.add b 0 0 2.0;
  (* duplicate: summed *)
  Sparse.add b 2 1 (-4.0);
  Sparse.add b 1 1 0.5;
  let m = Sparse.finalize b in
  Alcotest.(check int) "nnz" 3 (Sparse.nnz m);
  check_float "summed duplicate" 3.0 (Sparse.get m 0 0);
  check_float "entry" (-4.0) (Sparse.get m 2 1);
  check_float "missing is zero" 0.0 (Sparse.get m 0 2)

let test_sparse_cancel () =
  let b = Sparse.builder 2 2 in
  Sparse.add b 0 1 1.0;
  Sparse.add b 0 1 (-1.0);
  Sparse.add b 1 1 5.0;
  let m = Sparse.finalize b in
  Alcotest.(check int) "cancelled entries dropped" 1 (Sparse.nnz m)

let test_sparse_mul_vec () =
  let m = laplacian_1d 4 in
  let v = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (array (float 1e-12)))
    "L*v" [| 0.0; 0.0; 0.0; 5.0 |] (Sparse.mul_vec m v)

let test_sparse_symmetric () =
  Alcotest.(check bool) "laplacian symmetric" true
    (Sparse.is_symmetric (laplacian_1d 10))

let test_cg_vs_lu () =
  let n = 20 in
  let m = laplacian_1d n in
  let b = Array.init n (fun i -> sin (float_of_int i)) in
  let x_cg = Cg.solve_exn ~tol:1e-12 m b in
  let x_lu = Lu.solve_mat (Sparse.to_dense m) b in
  Alcotest.(check bool) "CG matches LU" true (Vec.max_abs_diff x_cg x_lu < 1e-8)

let test_cg_zero_rhs () =
  let r = Cg.solve (laplacian_1d 5) (Vec.zeros 5) in
  Alcotest.(check bool) "converged" true r.converged;
  check_float "zero solution" 0.0 (Vec.norm_inf r.solution)

let test_cg_not_converged () =
  let m = laplacian_1d 50 in
  let b = Array.init 50 (fun i -> float_of_int i) in
  Alcotest.check_raises "raises Not_converged"
    (Failure "expected Not_converged") (fun () ->
      match Cg.solve_exn ~max_iter:1 ~tol:1e-14 m b with
      | _ -> ()
      | exception Cg.Not_converged _ -> failwith "expected Not_converged")

let prop_cg_solves_spd =
  QCheck.Test.make ~count:50 ~name:"CG solves random grounded Laplacians"
    QCheck.(pair (int_range 2 40) (int_range 0 1000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed |] in
      let b = Sparse.builder n n in
      (* random connected resistor chain + ground leaks: SPD *)
      for i = 0 to n - 2 do
        let g = 0.1 +. Random.State.float st 5.0 in
        Sparse.add b i i g;
        Sparse.add b (i + 1) (i + 1) g;
        Sparse.add b i (i + 1) (-.g);
        Sparse.add b (i + 1) i (-.g)
      done;
      for i = 0 to n - 1 do
        Sparse.add b i i (0.01 +. Random.State.float st 1.0)
      done;
      let m = Sparse.finalize b in
      let x_true = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
      let rhs = Sparse.mul_vec m x_true in
      let x = Cg.solve_exn ~tol:1e-12 m rhs in
      Vec.max_abs_diff x x_true < 1e-6)

(* ------------------------------------------------------------------ *)
(* Mg: geometric multigrid preconditioner *)

module Mg = Sn_numerics.Mg

(* 3-D grid Laplacian in the extractor's cell ordering, grounded
   through weak leaks on the top surface — the shape Mg is built
   for *)
let grid_laplacian ?(leak = 1.0e-2) (nx, ny, nz) =
  let n = nx * ny * nz in
  let b = Sparse.builder n n in
  let idx ix iy iz = (iz * nx * ny) + (iy * nx) + ix in
  let couple i j g =
    Sparse.add b i i g;
    Sparse.add b j j g;
    Sparse.add b i j (-.g);
    Sparse.add b j i (-.g)
  in
  for iz = 0 to nz - 1 do
    for iy = 0 to ny - 1 do
      for ix = 0 to nx - 1 do
        let here = idx ix iy iz in
        if ix + 1 < nx then couple here (idx (ix + 1) iy iz) 1.0;
        if iy + 1 < ny then couple here (idx ix (iy + 1) iz) 1.3;
        if iz + 1 < nz then couple here (idx ix iy (iz + 1)) 0.7;
        if iz = 0 then Sparse.add b here here leak
      done
    done
  done;
  Sparse.finalize b

let test_mg_cg_vs_lu () =
  let dims = (9, 7, 3) in
  let m = grid_laplacian dims in
  let n = Sparse.rows m in
  let mg = Mg.build ~dims m in
  let st = Random.State.make [| 7 |] in
  let rhs = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
  let x = Cg.solve_exn ~tol:1e-12 ~precond:(Mg.apply mg) m rhs in
  let x_lu = Lu.solve_mat (Sparse.to_dense m) rhs in
  Alcotest.(check bool) "MG-CG matches LU" true
    (Vec.max_abs_diff x x_lu < 1e-7)

(* PCG requires a symmetric preconditioner: <M e_i, e_j> = <e_i, M e_j>.
   The symmetric red-black V-cycle must satisfy this to rounding. *)
let test_mg_symmetric () =
  let dims = (6, 5, 2) in
  let m = grid_laplacian dims in
  let n = Sparse.rows m in
  let mg = Mg.build ~coarse_limit:20 ~dims m in
  let basis k = Vec.init n (fun i -> if i = k then 1.0 else 0.0) in
  let pairs = [ (0, n - 1); (3, 17); (n / 2, n / 3) ] in
  List.iter
    (fun (i, j) ->
      let mi = Mg.apply mg (basis i) and mj = Mg.apply mg (basis j) in
      let scale = Float.max (Vec.norm_inf mi) (Vec.norm_inf mj) in
      Alcotest.(check bool)
        (Printf.sprintf "symmetry (%d,%d)" i j)
        true
        (Float.abs (mi.(j) -. mj.(i)) /. scale < 1e-10))
    pairs

(* the point of multigrid: iteration counts stay near-constant as the
   grid refines, where Jacobi-CG grows with the mesh diameter *)
let test_mg_iterations_flat () =
  let iters dims =
    let m = grid_laplacian dims in
    let mg = Mg.build ~dims m in
    let n = Sparse.rows m in
    let rhs = Array.init n (fun i -> sin (0.1 *. float_of_int i)) in
    let r = Cg.solve ~tol:1e-10 ~precond:(Mg.apply mg) m rhs in
    Alcotest.(check bool) "converged" true r.Cg.converged;
    r.Cg.iterations
  in
  let small = iters (24, 24, 4) in
  let large = iters (48, 48, 4) in
  Alcotest.(check bool)
    (Printf.sprintf "near-constant iterations (%d -> %d)" small large)
    true
    (large <= small + 6 && large <= 30)

let test_cg_zero_diagonal () =
  let b = Sparse.builder 3 3 in
  Sparse.add b 0 0 2.0;
  Sparse.add b 2 2 1.0;
  (* row 1 left without a diagonal entry *)
  Sparse.add b 0 2 (-0.5);
  Sparse.add b 2 0 (-0.5);
  let m = Sparse.finalize b in
  Alcotest.check_raises "zero diagonal refused" (Cg.Zero_diagonal 1)
    (fun () -> ignore (Cg.solve m [| 1.0; 1.0; 1.0 |]))

(* ------------------------------------------------------------------ *)
(* Splu: sparse LU with reusable symbolic factorization *)

(* random diagonally dominant unsymmetric sparse system: a ring of
   couplings plus scattered off-diagonal entries *)
let random_dd_system st n =
  let b = Sparse.builder n n in
  let offdiag = Array.make n 0.0 in
  let couple i j v =
    if i <> j then begin
      Sparse.add b i j v;
      offdiag.(i) <- offdiag.(i) +. Float.abs v
    end
  in
  for i = 0 to n - 1 do
    couple i ((i + 1) mod n) (Random.State.float st 2.0 -. 1.0);
    couple i ((i + n - 1) mod n) (Random.State.float st 2.0 -. 1.0);
    (* a few random long-range entries make the pattern unsymmetric *)
    if Random.State.float st 1.0 < 0.5 then
      couple i (Random.State.int st n) (Random.State.float st 2.0 -. 1.0)
  done;
  for i = 0 to n - 1 do
    Sparse.add b i i (offdiag.(i) +. 1.0 +. Random.State.float st 1.0)
  done;
  Sparse.finalize b

let prop_splu_matches_dense =
  QCheck.Test.make ~count:60
    ~name:"sparse LU matches dense LU on random diagonally dominant systems"
    QCheck.(pair (int_range 2 80) (int_range 0 1000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; n |] in
      let m = random_dd_system st n in
      let rhs = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
      (* crossover 0 forces the Gilbert-Peierls path even for tiny n *)
      let f = Splu.factor ~crossover:0 m in
      let x_sparse = Splu.solve f rhs in
      let x_dense = Lu.solve_mat (Sparse.to_dense m) rhs in
      if Vec.max_abs_diff x_sparse x_dense >= 1e-9 then false
      else begin
        (* numeric refill with the same pattern: scale all values in
           place, refactor without symbolic work, compare again *)
        let v = Sparse.values m in
        for k = 0 to Array.length v - 1 do
          v.(k) <- v.(k) *. (1.5 +. (0.25 *. sin (float_of_int k)))
        done;
        Splu.refactor f m;
        let x_sparse' = Splu.solve f rhs in
        let x_dense' = Lu.solve_mat (Sparse.to_dense m) rhs in
        Vec.max_abs_diff x_sparse' x_dense' < 1e-9
      end)

let test_splu_dense_fallback () =
  let st = Random.State.make [| 42 |] in
  let n = 12 in
  let m = random_dd_system st n in
  let rhs = Array.init n (fun i -> cos (float_of_int i)) in
  (* n below the default crossover: the factor must be dense *)
  let f = Splu.factor m in
  Alcotest.(check bool) "dense fallback" true (Splu.is_dense f);
  Alcotest.(check int) "dim" n (Splu.dim f);
  let x = Splu.solve f rhs in
  let x_ref = Lu.solve_mat (Sparse.to_dense m) rhs in
  Alcotest.(check bool) "fallback matches dense" true
    (Vec.max_abs_diff x x_ref < 1e-9)

let test_splu_singular () =
  let b = Sparse.builder 3 3 in
  Sparse.add b 0 0 1.0;
  Sparse.add b 1 1 1.0;
  (* row/column 2 is empty: structurally singular *)
  let m = Sparse.finalize b in
  Alcotest.(check bool) "raises Singular" true
    (match Splu.factor ~crossover:0 m with
     | _ -> false
     | exception Splu.Singular _ -> true)

let test_splu_counters () =
  Splu.reset_stats ();
  let st = Random.State.make [| 7 |] in
  let m = random_dd_system st 30 in
  let rhs = Array.make 30 1.0 in
  let f = Splu.factor ~crossover:0 m in
  ignore (Splu.solve f rhs);
  Splu.refactor f m;
  ignore (Splu.solve f rhs);
  Alcotest.(check int) "factorizations" 1 (Splu.factorizations ());
  Alcotest.(check int) "refactorizations" 1 (Splu.refactorizations ());
  Alcotest.(check int) "solves" 2 (Splu.solves ())

(* complex kernel: split re/im Gilbert-Peierls with transpose solve *)

(* reuse the real pattern generator; boost the diagonal so the complex
   off-diagonal magnitudes cannot overwhelm it *)
let random_cdd_system st n =
  let p = random_dd_system st n in
  let m = Splu.Cplx.mat_of_pattern p in
  let v = Sparse.values p in
  let rp = Sparse.row_ptr p and ci = Sparse.col_idx p in
  for i = 0 to n - 1 do
    for k = rp.(i) to rp.(i + 1) - 1 do
      if ci.(k) = i then begin
        m.Splu.Cplx.re.(k) <- 3.0 *. v.(k);
        m.Splu.Cplx.im.(k) <- 0.5 *. v.(k)
      end
      else begin
        m.Splu.Cplx.re.(k) <- v.(k);
        m.Splu.Cplx.im.(k) <- Random.State.float st 2.0 -. 1.0
      end
    done
  done;
  m

let cmax_diff a b =
  let d = ref 0.0 in
  Array.iteri
    (fun i ai -> d := Float.max !d (Complex.norm (Complex.sub ai b.(i))))
    a;
  !d

let dense_transpose d =
  let n = Array.length d in
  Array.init n (fun i -> Array.init n (fun j -> d.(j).(i)))

let random_crhs st n =
  Array.init n (fun _ ->
      { Complex.re = Random.State.float st 2.0 -. 1.0;
        im = Random.State.float st 2.0 -. 1.0 })

let prop_csplu_matches_dense =
  QCheck.Test.make ~count:40
    ~name:"complex sparse LU matches dense (forward and transpose solves)"
    QCheck.(pair (int_range 2 60) (int_range 0 1000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed; n; 77 |] in
      let m = random_cdd_system st n in
      let rhs = random_crhs st n in
      let f = Splu.Cplx.factor ~crossover:0 m in
      let d = Splu.Cplx.mat_to_dense m in
      if cmax_diff (Splu.Cplx.solve f rhs) (Lu.Cplx.solve_matrix d rhs) >= 1e-9
      then false
      else if
        cmax_diff
          (Splu.Cplx.solve_transpose f rhs)
          (Lu.Cplx.solve_matrix (dense_transpose d) rhs)
        >= 1e-9
      then false
      else begin
        (* numeric refill on the fixed pattern *)
        for k = 0 to Array.length m.Splu.Cplx.re - 1 do
          m.Splu.Cplx.re.(k) <- m.Splu.Cplx.re.(k) *. 1.25;
          m.Splu.Cplx.im.(k) <- m.Splu.Cplx.im.(k) *. 0.75
        done;
        Splu.Cplx.refactor f m;
        let d' = Splu.Cplx.mat_to_dense m in
        if
          cmax_diff (Splu.Cplx.solve f rhs) (Lu.Cplx.solve_matrix d' rhs)
          >= 1e-9
        then false
        else begin
          (* a clone refactored at the same values reproduces the
             original factor bit for bit *)
          let c = Splu.Cplx.clone f in
          Splu.Cplx.refactor c m;
          Splu.Cplx.solve c rhs = Splu.Cplx.solve f rhs
          && Splu.Cplx.solve_transpose c rhs = Splu.Cplx.solve_transpose f rhs
        end
      end)

let test_csplu_dense_fallback () =
  let st = Random.State.make [| 11 |] in
  let n = 12 in
  let m = random_cdd_system st n in
  let rhs = random_crhs st n in
  (* n below the default crossover: the factor must be dense *)
  let f = Splu.Cplx.factor m in
  Alcotest.(check bool) "dense fallback" true (Splu.Cplx.is_dense f);
  Alcotest.(check int) "dim" n (Splu.Cplx.dim f);
  let d = Splu.Cplx.mat_to_dense m in
  Alcotest.(check bool) "forward matches" true
    (cmax_diff (Splu.Cplx.solve f rhs) (Lu.Cplx.solve_matrix d rhs) < 1e-9);
  Alcotest.(check bool) "transpose matches" true
    (cmax_diff
       (Splu.Cplx.solve_transpose f rhs)
       (Lu.Cplx.solve_matrix (dense_transpose d) rhs)
     < 1e-9)

let test_csplu_singular () =
  let b = Sparse.builder 3 3 in
  Sparse.add b 0 0 1.0;
  Sparse.add b 1 1 1.0;
  (* row/column 2 is empty: structurally singular *)
  let p = Sparse.finalize b in
  let m = Splu.Cplx.mat_of_pattern p in
  m.Splu.Cplx.re.(0) <- 1.0;
  m.Splu.Cplx.re.(1) <- 1.0;
  Alcotest.(check bool) "raises Singular" true
    (match Splu.Cplx.factor ~crossover:0 m with
     | _ -> false
     | exception Splu.Singular _ -> true)

let test_heap_sorts () =
  let st = Random.State.make [| 3 |] in
  let h = Heap.create () in
  let keys = Array.init 200 (fun _ -> Random.State.int st 1000) in
  Array.iteri (fun i k -> Heap.push h ~key:k i) keys;
  Alcotest.(check int) "length" 200 (Heap.length h);
  let prev = ref min_int in
  let count = ref 0 in
  let ok = ref true in
  let continue = ref true in
  while !continue do
    match Heap.pop h with
    | None -> continue := false
    | Some (k, payload) ->
      if k < !prev || keys.(payload) <> k then ok := false;
      prev := k;
      incr count
  done;
  Alcotest.(check bool) "ascending keys, payloads intact" true !ok;
  Alcotest.(check int) "all popped" 200 !count;
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

(* ------------------------------------------------------------------ *)
(* FFT / Goertzel *)

let test_fft_impulse () =
  let x = Array.init 8 (fun i -> if i = 0 then Complex.one else Complex.zero) in
  let y = Fft.fft x in
  Array.iter
    (fun c ->
      check_close 1e-12 "flat spectrum re" 1.0 c.Complex.re;
      check_close 1e-12 "flat spectrum im" 0.0 c.Complex.im)
    y

let test_fft_roundtrip () =
  let n = 64 in
  let x =
    Array.init n (fun i ->
        { Complex.re = sin (0.3 *. float_of_int i); im = cos (0.7 *. float_of_int i) })
  in
  let y = Fft.ifft (Fft.fft x) in
  let max_err = ref 0.0 in
  Array.iteri
    (fun i c ->
      max_err := Float.max !max_err (Complex.norm (Complex.sub c x.(i))))
    y;
  Alcotest.(check bool) "ifft . fft = id" true (!max_err < 1e-10)

let test_fft_bad_length () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Fft: length must be a power of two") (fun () ->
      ignore (Fft.fft (Array.make 12 Complex.zero)))

let test_amplitude_spectrum_tone () =
  let fs = 1024.0 and f = 128.0 and a = 0.5 in
  let samples =
    Array.init 1024 (fun i ->
        a *. cos (Units.two_pi *. f *. float_of_int i /. fs))
  in
  let s = Fft.amplitude_spectrum ~window:`Rect ~fs samples in
  let fpk, apk = Fft.peak_near s ~f ~span:2.0 in
  check_close 1e-9 "peak frequency" f fpk;
  check_close 1e-6 "peak amplitude" a apk

let test_amplitude_spectrum_hann () =
  let fs = 1000.0 and f = 100.0 and a = 2.0 in
  let samples =
    Array.init 2000 (fun i ->
        a *. cos (Units.two_pi *. f *. float_of_int i /. fs))
  in
  let s = Fft.amplitude_spectrum ~fs samples in
  let _, apk = Fft.peak_near s ~f ~span:3.0 in
  Alcotest.(check bool) "hann-windowed tone within 5%" true
    (Float.abs (apk -. a) /. a < 0.05)

let test_goertzel_tone () =
  let fs = 1.0e6 and f = 12_345.0 and a = 0.25 in
  let n = 10_000 in
  let samples =
    Array.init n (fun i ->
        a *. cos ((Units.two_pi *. f *. float_of_int i /. fs) +. 0.3))
  in
  check_close 1e-3 "goertzel amplitude" a (Goertzel.amplitude ~fs ~f samples)

let test_goertzel_dc () =
  let samples = Array.make 100 3.0 in
  check_close 1e-9 "dc amplitude" 3.0 (Goertzel.amplitude ~fs:1.0 ~f:0.0 samples)

let test_goertzel_rejects_other_tone () =
  let fs = 1.0e6 in
  let n = 100_000 in
  let samples =
    Array.init n (fun i ->
        cos (Units.two_pi *. 100_000.0 *. float_of_int i /. fs))
  in
  let leak = Goertzel.amplitude_windowed ~fs ~f:150_000.0 samples in
  Alcotest.(check bool) "leakage below -60 dB" true (leak < 1e-3)

let prop_goertzel_matches_fft =
  QCheck.Test.make ~count:30 ~name:"Goertzel matches FFT on bin centers"
    QCheck.(int_range 1 120)
    (fun k ->
      let n = 256 and fs = 256.0 in
      let f = float_of_int k in
      let samples =
        Array.init n (fun i ->
            (0.7 *. cos (Units.two_pi *. f *. float_of_int i /. fs))
            +. (0.1 *. cos (Units.two_pi *. 3.0 *. float_of_int i /. fs)))
      in
      let g = Goertzel.amplitude ~fs ~f samples in
      let s = Fft.amplitude_spectrum ~window:`Rect ~fs samples in
      let _, apk = Fft.peak_near s ~f ~span:0.4 in
      Float.abs (g -. apk) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Sweep / Stats / Rootfind *)

let test_linspace () =
  Alcotest.(check (array (float 1e-12)))
    "5 points" [| 0.0; 0.25; 0.5; 0.75; 1.0 |] (Sweep.linspace 0.0 1.0 5)

let test_logspace () =
  let s = Sweep.logspace 1.0 1000.0 4 in
  Alcotest.(check (array (float 1e-9))) "decade points"
    [| 1.0; 10.0; 100.0; 1000.0 |] s

let test_decades () =
  let s = Sweep.decades ~per_decade:10 1.0e5 1.5e7 in
  check_close 1e-3 "starts at f0" 1.0e5 s.(0);
  check_close 1e3 "ends at f1" 1.5e7 s.(Array.length s - 1);
  Alcotest.(check bool) "monotone" true
    (Array.for_all Fun.id (Array.init (Array.length s - 1) (fun i -> s.(i) < s.(i + 1))))

let test_interp1 () =
  let xs = [| 0.0; 1.0; 2.0 |] and ys = [| 0.0; 10.0; 0.0 |] in
  check_float "midpoint" 5.0 (Sweep.interp1 xs ys 0.5);
  check_float "clamp low" 0.0 (Sweep.interp1 xs ys (-1.0));
  check_float "clamp high" 0.0 (Sweep.interp1 xs ys 5.0);
  check_float "on sample" 10.0 (Sweep.interp1 xs ys 1.0)

let test_stats_basic () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean a);
  check_float "variance" 1.25 (Stats.variance a);
  check_float "max_abs" 4.0 (Stats.max_abs a);
  check_close 1e-9 "rms" (sqrt 7.5) (Stats.rms a)

let test_linear_fit () =
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let ys = [| 1.0; 3.0; 5.0; 7.0 |] in
  let f = Stats.linear_fit xs ys in
  check_float "slope" 2.0 f.Stats.slope;
  check_float "intercept" 1.0 f.Stats.intercept;
  check_float "r2" 1.0 f.Stats.r_squared

let test_slope_db_per_decade () =
  (* amplitude ~ 1/f gives -20 dB/dec *)
  let freqs = Sweep.logspace 1.0e5 1.0e7 21 in
  let dbs = Array.map (fun f -> Units.db_of_ratio (1.0 /. f)) freqs in
  check_close 1e-6 "1/f slope" (-20.0) (Stats.slope_db_per_decade freqs dbs)

let test_bisect () =
  let root = Rootfind.bisect (fun x -> (x *. x) -. 2.0) 0.0 2.0 in
  check_close 1e-9 "sqrt 2" (sqrt 2.0) root

let test_bisect_no_bracket () =
  Alcotest.check_raises "no bracket" Rootfind.No_bracket (fun () ->
      ignore (Rootfind.bisect (fun x -> (x *. x) +. 1.0) 0.0 1.0))

let test_newton () =
  let root =
    Rootfind.newton ~f:(fun x -> (x *. x) -. 9.0) ~df:(fun x -> 2.0 *. x) 1.0
  in
  check_close 1e-9 "sqrt 9" 3.0 root

(* ------------------------------------------------------------------ *)
(* Zero crossing *)

module Zc = Sn_numerics.Zero_crossing

let test_zc_frequency () =
  let fs = 1.0e6 and f = 12_347.0 in
  let samples =
    Array.init 40_000 (fun i ->
        sin ((Units.two_pi *. f *. float_of_int i /. fs) +. 0.7))
  in
  let est = Zc.estimate_frequency ~fs samples in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.2f vs %.2f" est f)
    true
    (Float.abs (est -. f) /. f < 1e-4)

let test_zc_jitter_pure_tone () =
  let fs = 1.0e6 and f = 10_000.0 in
  let samples =
    Array.init 50_000 (fun i -> sin (Units.two_pi *. f *. float_of_int i /. fs))
  in
  let jitter = Zc.period_jitter ~fs samples in
  Alcotest.(check bool) "tiny jitter" true (jitter *. f < 1e-3)

let test_zc_too_short () =
  Alcotest.(check bool) "short record rejected" true
    (match Zc.estimate_frequency ~fs:1.0 [| 1.0; 2.0 |] with
     | exception Invalid_argument _ -> true
     | _ -> false)

let prop_zc_tracks_frequency =
  QCheck.Test.make ~count:50 ~name:"zero crossing tracks tone frequency"
    QCheck.(float_range 1000.0 40000.0)
    (fun f ->
      let fs = 1.0e6 in
      let samples =
        Array.init 30_000 (fun i ->
            cos (Units.two_pi *. f *. float_of_int i /. fs))
      in
      let est = Zc.estimate_frequency ~fs samples in
      Float.abs (est -. f) /. f < 1e-3)

let prop_fft_parseval =
  QCheck.Test.make ~count:30 ~name:"FFT satisfies Parseval"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let n = 128 in
      let x =
        Array.init n (fun _ ->
            { Complex.re = Random.State.float st 2.0 -. 1.0;
              im = Random.State.float st 2.0 -. 1.0 })
      in
      let y = Fft.fft x in
      let energy a =
        Array.fold_left (fun acc c -> acc +. Complex.norm2 c) 0.0 a
      in
      Float.abs (energy y -. (float_of_int n *. energy x))
      < 1e-6 *. float_of_int n *. energy x)

(* ------------------------------------------------------------------ *)
(* cooperative cancellation tokens *)

module Cancel = Sn_numerics.Cancel

let test_cancel_expiry () =
  let t = Cancel.create ~deadline:(Unix.gettimeofday () -. 1.0) () in
  Alcotest.(check bool) "expired" true (Cancel.expired t);
  (match Cancel.check t with
  | () -> Alcotest.fail "expired token passed check"
  | exception Cancel.Cancelled t' ->
    Alcotest.(check string) "reason" "deadline" (Cancel.reason t'));
  (* expiry latches the flag *)
  Alcotest.(check bool) "latched" true (Cancel.cancelled t);
  (* a far-future deadline neither expires nor cancels *)
  let live = Cancel.with_deadline_ms 3.6e6 in
  Alcotest.(check bool) "live" false (Cancel.expired live);
  Cancel.check live

let test_cancel_ambient () =
  Alcotest.(check bool) "disarmed" false (Cancel.active ());
  (* polls are no-ops with no token installed *)
  Cancel.poll ();
  Cancel.tick ();
  let t = Cancel.create () in
  Cancel.with_token t (fun () ->
      Alcotest.(check bool) "armed" true (Cancel.active ());
      Cancel.tick ();
      Cancel.tick ());
  Alcotest.(check int) "progress counted" 2 (Cancel.progress t);
  Alcotest.(check bool) "restored" false (Cancel.active ());
  (* an explicitly cancelled token unwinds at the next tick, and the
     ambient slot is restored even on the exceptional path *)
  let t2 = Cancel.create () in
  Cancel.cancel ~reason:"disconnect" t2;
  (match Cancel.with_token t2 (fun () -> Cancel.tick ()) with
  | () -> Alcotest.fail "cancelled token ticked"
  | exception Cancel.Cancelled t' ->
    Alcotest.(check string) "reason kept" "disconnect" (Cancel.reason t'));
  Alcotest.(check bool) "restored after raise" false (Cancel.active ())

let test_cancel_stops_cg () =
  (* a CG solve under an expired ambient token unwinds within one
     iteration instead of running to convergence *)
  let n = 64 in
  let m = laplacian_1d n in
  let b = Vec.init n (fun i -> Float.sin (float_of_int i)) in
  let tok = Cancel.create ~deadline:(Unix.gettimeofday () -. 1.0) () in
  match Cancel.with_token tok (fun () -> Cg.solve_exn ~tol:1e-12 m b) with
  | _ -> Alcotest.fail "expired token did not stop CG"
  | exception Cancel.Cancelled _ -> ()

let qcheck t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "numerics.units",
      [
        Alcotest.test_case "db round trip" `Quick test_db_roundtrip;
        Alcotest.test_case "dbm of vpeak" `Quick test_dbm_of_vpeak;
        Alcotest.test_case "-5 dBm tone" `Quick test_minus5dbm;
        Alcotest.test_case "invalid db" `Quick test_db_invalid;
        Alcotest.test_case "engineering format" `Quick test_eng_format;
      ] );
    ( "numerics.linalg",
      [
        Alcotest.test_case "vector ops" `Quick test_vec_ops;
        Alcotest.test_case "vector mismatch" `Quick test_vec_mismatch;
        Alcotest.test_case "matrix multiply" `Quick test_mat_mul;
        Alcotest.test_case "identity laws" `Quick test_mat_identity;
        Alcotest.test_case "transpose" `Quick test_mat_transpose;
        Alcotest.test_case "symmetry check" `Quick test_mat_symmetry;
        Alcotest.test_case "LU known system" `Quick test_lu_solve_known;
        Alcotest.test_case "LU singular" `Quick test_lu_singular;
        Alcotest.test_case "LU inverse" `Quick test_lu_invert;
        Alcotest.test_case "LU pivoting" `Quick test_lu_pivoting;
        Alcotest.test_case "complex LU" `Quick test_lu_complex;
        Alcotest.test_case "complex determinant" `Quick test_lu_complex_det;
        qcheck prop_lu_random_solve;
      ] );
    ( "numerics.sparse",
      [
        Alcotest.test_case "triplet build" `Quick test_sparse_build;
        Alcotest.test_case "cancellation drops zeros" `Quick test_sparse_cancel;
        Alcotest.test_case "mat-vec" `Quick test_sparse_mul_vec;
        Alcotest.test_case "symmetry" `Quick test_sparse_symmetric;
        Alcotest.test_case "CG matches LU" `Quick test_cg_vs_lu;
        Alcotest.test_case "CG zero rhs" `Quick test_cg_zero_rhs;
        Alcotest.test_case "CG non-convergence" `Quick test_cg_not_converged;
        Alcotest.test_case "CG zero diagonal" `Quick test_cg_zero_diagonal;
        qcheck prop_cg_solves_spd;
      ] );
    ( "numerics.mg",
      [
        Alcotest.test_case "MG-CG matches LU" `Quick test_mg_cg_vs_lu;
        Alcotest.test_case "V-cycle symmetric" `Quick test_mg_symmetric;
        Alcotest.test_case "iterations near-constant" `Quick
          test_mg_iterations_flat;
      ] );
    ( "numerics.splu",
      [
        qcheck prop_splu_matches_dense;
        Alcotest.test_case "dense fallback" `Quick test_splu_dense_fallback;
        Alcotest.test_case "structurally singular" `Quick test_splu_singular;
        Alcotest.test_case "factorization counters" `Quick test_splu_counters;
        qcheck prop_csplu_matches_dense;
        Alcotest.test_case "complex dense fallback" `Quick
          test_csplu_dense_fallback;
        Alcotest.test_case "complex structurally singular" `Quick
          test_csplu_singular;
        Alcotest.test_case "heap sorts" `Quick test_heap_sorts;
      ] );
    ( "numerics.spectral",
      [
        Alcotest.test_case "fft impulse" `Quick test_fft_impulse;
        Alcotest.test_case "fft round trip" `Quick test_fft_roundtrip;
        Alcotest.test_case "fft bad length" `Quick test_fft_bad_length;
        Alcotest.test_case "tone amplitude (rect)" `Quick test_amplitude_spectrum_tone;
        Alcotest.test_case "tone amplitude (hann)" `Quick test_amplitude_spectrum_hann;
        Alcotest.test_case "goertzel tone" `Quick test_goertzel_tone;
        Alcotest.test_case "goertzel dc" `Quick test_goertzel_dc;
        Alcotest.test_case "goertzel leakage" `Quick test_goertzel_rejects_other_tone;
        qcheck prop_goertzel_matches_fft;
      ] );
    ( "numerics.sweep",
      [
        Alcotest.test_case "linspace" `Quick test_linspace;
        Alcotest.test_case "logspace" `Quick test_logspace;
        Alcotest.test_case "decades" `Quick test_decades;
        Alcotest.test_case "interp1" `Quick test_interp1;
        Alcotest.test_case "stats basics" `Quick test_stats_basic;
        Alcotest.test_case "linear fit" `Quick test_linear_fit;
        Alcotest.test_case "dB/decade slope" `Quick test_slope_db_per_decade;
        Alcotest.test_case "zero-crossing frequency" `Quick test_zc_frequency;
        Alcotest.test_case "zero-crossing jitter" `Quick
          test_zc_jitter_pure_tone;
        Alcotest.test_case "zero-crossing short record" `Quick
          test_zc_too_short;
        qcheck prop_zc_tracks_frequency;
        qcheck prop_fft_parseval;
        Alcotest.test_case "bisection" `Quick test_bisect;
        Alcotest.test_case "bisection no bracket" `Quick test_bisect_no_bracket;
        Alcotest.test_case "newton" `Quick test_newton;
      ] );
    ( "numerics.cancel",
      [
        Alcotest.test_case "deadline expiry" `Quick test_cancel_expiry;
        Alcotest.test_case "ambient token" `Quick test_cancel_ambient;
        Alcotest.test_case "stops a CG solve" `Quick test_cancel_stops_cg;
      ] );
  ]
