* conditioning-span: twenty decades of conductance meet at node b,
* so partial pivoting cancels the small branch and the solve hits a
* singular pivot.  The current-source drive keeps the span purely
* resistive (no vsource branch row to rescue the pivot).
i1 0 a dc 1m
rbig a b 1e-20
r2 b 0 1
.end
