* non-passive-pool: the negative resistor leaves the R/C pool's
* conductance pencil indefinite, so no passivity certificate can be
* issued for any reduction of this deck.
v1 in 0 dc 1
r1 in p 1
rneg p 0 -0.5
.end
