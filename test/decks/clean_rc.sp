.title clean RC divider
v1 in 0 1.0
r1 in mid 1k
r2 mid 0 1k
c1 mid 0 1p
.end
