* pathological deck: an ideal inductor strapped straight across an
* ideal source closes a voltage-defined loop through ground — the DC
* MNA pattern is structurally singular (AC is fine: the inductor row
* gains its jwL diagonal).
v1 in 0 1.0
l1 in 0 10n
r1 in 0 1k
.end
