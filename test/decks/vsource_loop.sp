* pathological deck: two ideal sources disagree on node "in",
* closing a voltage-source loop (lint error, singular MNA matrix).
v1 in 0 1.0
v2 in 0 2.0
r1 in 0 1k
.end
