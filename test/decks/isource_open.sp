* a current source driving an RC island that returns through ground:
* simulates fine, lints clean of errors (isource-cutset stays quiet
* because r1/r2 provide the return path).
i1 x 0 1m
r1 x y 1k
r2 y 0 1k
c1 x 0 1p
.end
