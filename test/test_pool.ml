(* Worker pool and sweep-combinator tests.

   The load-bearing property is determinism: a parallel sweep must be
   byte-for-byte identical to the sequential (jobs = 1) path, because
   the figure reports are diffed against the paper's numbers.  The
   determinism tests therefore render full experiment reports at two
   pool widths and compare the formatted strings.  Experiment fixtures
   use a reduced substrate grid so the double runs stay cheap. *)

module Pool = Sn_engine.Pool
module Sweep = Snoise.Sweep
module E = Snoise.Experiments
module Flow = Snoise.Flow

(* ------------------------------------------------------------------ *)
(* pool mechanics *)

let test_map_preserves_order () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let xs = Array.init 257 (fun i -> i) in
  let expect = Array.map (fun i -> (i * i) - (3 * i)) xs in
  Alcotest.(check (array int))
    "map_array in input order" expect
    (Pool.map_array pool (fun i -> (i * i) - (3 * i)) xs);
  Alcotest.(check (list string))
    "map_list in input order"
    [ "0"; "1"; "2"; "3"; "4" ]
    (Pool.map_list pool string_of_int [ 0; 1; 2; 3; 4 ])

let test_jobs1_is_sequential () =
  let pool = Pool.create ~jobs:1 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  (* with one worker every task must run on the calling domain *)
  let self = Domain.self () in
  let doms = Pool.map_list pool (fun _ -> Domain.self ()) [ 1; 2; 3; 4 ] in
  List.iter
    (fun d -> Alcotest.(check bool) "ran on calling domain" true (d = self))
    doms;
  let s = Pool.stats pool in
  Alcotest.(check int) "jobs" 1 s.Pool.jobs;
  Alcotest.(check int) "tasks" 4 s.Pool.tasks_run

let test_exception_propagates () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Alcotest.check_raises "task exception re-raised" (Failure "boom")
    (fun () ->
      ignore
        (Pool.map_list pool
           (fun i -> if i = 13 then failwith "boom" else i)
           (List.init 32 Fun.id)));
  (* the pool must survive a failed batch *)
  Alcotest.(check (list int)) "pool usable after exception" [ 2; 4 ]
    (Pool.map_list pool (fun i -> 2 * i) [ 1; 2 ])

let test_pool_reuse_across_sweeps () =
  let pool = Pool.create ~jobs:3 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Pool.reset_stats pool;
  let a = Pool.map_list pool (fun i -> i + 1) (List.init 10 Fun.id) in
  let b = Pool.map_list pool (fun i -> i * 2) (List.init 7 Fun.id) in
  Alcotest.(check (list int)) "first sweep" (List.init 10 (fun i -> i + 1)) a;
  Alcotest.(check (list int)) "second sweep" (List.init 7 (fun i -> i * 2)) b;
  let s = Pool.stats pool in
  Alcotest.(check int) "batches" 2 s.Pool.batches;
  Alcotest.(check int) "tasks accumulate" 17 s.Pool.tasks_run;
  Alcotest.(check bool) "imbalance finite" true
    (Float.is_finite (Pool.imbalance s))

let test_nested_run_inlines () =
  let pool = Pool.create ~jobs:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  (* a sweep point that itself sweeps must not deadlock *)
  let r =
    Pool.map_list pool
      (fun i -> Pool.map_list pool (fun j -> (10 * i) + j) [ 0; 1 ])
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list (list int)))
    "nested sweep correct"
    [ [ 10; 11 ]; [ 20; 21 ]; [ 30; 31 ] ]
    r

let test_jobs_parsing () =
  (* 0, negative and garbage fall back to the default; huge clamps *)
  Alcotest.(check int) "garbage" 3 (Pool.jobs_of_string ~default:3 "lots");
  Alcotest.(check int) "empty" 3 (Pool.jobs_of_string ~default:3 "");
  Alcotest.(check int) "zero" 3 (Pool.jobs_of_string ~default:3 "0");
  Alcotest.(check int) "negative" 3 (Pool.jobs_of_string ~default:3 "-2");
  Alcotest.(check int) "trimmed" 8 (Pool.jobs_of_string ~default:3 " 8 ");
  Alcotest.(check int) "clamped high" Pool.max_jobs
    (Pool.jobs_of_string ~default:3 "100000");
  Alcotest.(check int) "default itself clamps" 1
    (Pool.jobs_of_string ~default:(-4) "junk");
  Alcotest.(check bool) "recommended in range" true
    (let r = Pool.recommended_jobs () in
     r >= 1 && r <= Pool.max_jobs)

let test_grid_row_major () =
  let pool = Pool.create ~jobs:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Alcotest.(check (list (triple int string string)))
    "grid order and values"
    [ (1, "a", "1a"); (1, "b", "1b"); (2, "a", "2a"); (2, "b", "2b") ]
    (Sweep.grid ~pool
       (fun x y -> string_of_int x ^ y)
       [ 1; 2 ] [ "a"; "b" ])

(* ------------------------------------------------------------------ *)
(* experiment determinism: parallel report output must be the byte
   sequence the sequential path produces *)

(* reduced-cost options: coarser substrate grid than the default 48x48 *)
let fast_options =
  { Flow.default_options with
    Flow.grid =
      { Sn_substrate.Grid.nx = 24; ny = 24; z_per_layer = Some [ 1; 2; 2; 1 ] }
  }

let fast_f_noise = [| 1.0e6; 4.0e6; 15.0e6 |]

let render pp v =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  pp fmt v;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let with_jobs jobs f =
  let before = Sweep.jobs () in
  Sweep.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Sweep.set_jobs before) f

let test_fig7_parallel_identical () =
  let run () = render Snoise.Report.fig7 (E.fig7 ~options:fast_options ()) in
  let sequential = with_jobs 1 run in
  let parallel = with_jobs 4 run in
  Alcotest.(check string) "fig7 report byte-identical" sequential parallel

let test_fig9_parallel_identical () =
  let run () =
    render Snoise.Report.fig9
      (E.fig9 ~options:fast_options ~f_noise:fast_f_noise ())
  in
  let sequential = with_jobs 1 run in
  let parallel = with_jobs 4 run in
  Alcotest.(check string) "fig9 report byte-identical" sequential parallel

let suites =
  [
    ( "pool",
      [
        Alcotest.test_case "map preserves order" `Quick
          test_map_preserves_order;
        Alcotest.test_case "jobs=1 runs on calling domain" `Quick
          test_jobs1_is_sequential;
        Alcotest.test_case "task exception propagates" `Quick
          test_exception_propagates;
        Alcotest.test_case "reuse across two sweeps" `Quick
          test_pool_reuse_across_sweeps;
        Alcotest.test_case "nested run inlines" `Quick test_nested_run_inlines;
        Alcotest.test_case "SNOISE_JOBS parsing edge cases" `Quick
          test_jobs_parsing;
        Alcotest.test_case "grid is row-major" `Quick test_grid_row_major;
      ] );
    ( "pool.determinism",
      [
        Alcotest.test_case "fig7 parallel = sequential" `Slow
          test_fig7_parallel_identical;
        Alcotest.test_case "fig9 parallel = sequential" `Slow
          test_fig9_parallel_identical;
      ] );
  ]
