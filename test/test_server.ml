(* The resident service: wire protocol round-trips, structured errors
   on malformed input, plan-cache hit/miss/invalidation, coalesced
   batching byte-identity, quota/backpressure, and a real socket
   session against a threaded server. *)

module J = Sn_server.Json
module P = Sn_server.Protocol
module Sv = Sn_server.Service
module Srv = Sn_server.Server
module Pc = Sn_server.Plan_cache

let deck =
  "* rc divider\nv1 in 0 dc 1 ac 1\nr1 in out 1k\nr2 out 0 1k\n.end\n"

(* same topology, different value: a distinct content key *)
let deck_edited =
  "* rc divider\nv1 in 0 dc 1 ac 1\nr1 in out 1k\nr2 out 0 2k\n.end\n"

let bad_lint_deck =
  "* voltage source loop\nv1 in 0 1.0\nv2 in 0 2.0\nr1 in 0 1k\n.end\n"

let member name j =
  match J.member name j with
  | Some v -> v
  | None -> Alcotest.failf "reply lacks %S: %s" name (J.to_string j)

let str j =
  match J.to_str j with
  | Some s -> s
  | None -> Alcotest.failf "not a string: %s" (J.to_string j)

let msg_type reply = str (member "type" reply)

let error_code reply = str (member "code" (member "error" reply))

let plan_note reply = member "plan" (member "served" reply)

let result_str reply = J.to_string (member "result" reply)

let handle1 svc line =
  match Sv.handle svc ~client:1 line with
  | [ r ] -> r
  | rs -> Alcotest.failf "expected 1 reply, got %d" (List.length rs)

let request ?(id = 1) ~verb ?deck:d ?params () =
  let fields =
    [ ("id", string_of_int id); ("verb", Printf.sprintf "%S" verb) ]
    @ (match d with
      | Some text -> [ ("deck", J.to_string (J.Str text)) ]
      | None -> [])
    @ match params with Some p -> [ ("params", p) ] | None -> []
  in
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields)
  ^ "}"

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_roundtrip () =
  let cases =
    [
      {|{"a": [1, 2.5, -0.03], "b": "x\ny\u0041\u00e9", "c": [true, false, null]}|};
      {|[1e300, 1e-300, 0, -0, 123456789012345]|};
      {|{"nested": {"deep": [[[{"k": "v"}]]]}}|};
      {|"\u0068\u0065\ud83d\ude00"|};
    ]
  in
  List.iter
    (fun s ->
      match J.parse s with
      | Error e -> Alcotest.failf "parse %s: %s" s e
      | Ok j -> (
        let s2 = J.to_string j in
        match J.parse s2 with
        | Error e -> Alcotest.failf "reparse %s: %s" s2 e
        | Ok j2 ->
          Alcotest.(check string) "print is stable" s2 (J.to_string j2)))
    cases

let test_json_specials () =
  (* non-finite floats render as strings (the Diag.to_json convention)
     and integers render bare *)
  Alcotest.(check string) "nan" {|"nan"|} (J.to_string (J.Num Float.nan));
  Alcotest.(check string) "inf" {|"inf"|}
    (J.to_string (J.Num Float.infinity));
  Alcotest.(check string) "int" "42" (J.to_string (J.Num 42.0));
  Alcotest.(check string)
    "escape" {|"a\"b\\c\nd"|}
    (J.to_string (J.Str "a\"b\\c\nd"))

let test_json_errors () =
  List.iter
    (fun s ->
      match J.parse s with
      | Ok j -> Alcotest.failf "accepted %S as %s" s (J.to_string j)
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "1 2"; "\"\\x\""; "{\"a\" 1}" ]

(* ------------------------------------------------------------------ *)
(* protocol *)

let test_protocol_parse () =
  let parse s =
    match J.parse s with
    | Ok j -> P.parse_request j
    | Error e -> Alcotest.fail e
  in
  (match parse {|{"id": 7, "verb": "ac", "deck": "x", "overrides": {"r1": 2e3}}|}
   with
  | Ok req ->
    Alcotest.(check string) "verb" "ac" (P.verb_name req.P.verb);
    Alcotest.(check (list (pair string (float 0.0))))
      "overrides" [ ("r1", 2000.0) ] req.P.overrides
  | Error (_, m) -> Alcotest.fail m);
  (match parse {|{"verb": "warp"}|} with
  | Error (P.Unknown_verb, _) -> ()
  | _ -> Alcotest.fail "unknown verb accepted");
  (match parse {|{"verb": "op", "deck": "x", "deck_path": "y"}|} with
  | Error (P.Bad_request, _) -> ()
  | _ -> Alcotest.fail "deck+deck_path accepted");
  (match parse {|{"verb": "op", "overrides": {"r1": "big"}}|} with
  | Error (P.Bad_request, _) -> ()
  | _ -> Alcotest.fail "non-numeric override accepted");
  match parse {|[1, 2]|} with
  | Error (P.Bad_request, _) -> ()
  | _ -> Alcotest.fail "non-object accepted"

let test_cache_key () =
  let k = Pc.deck_key ~text:deck ~overrides:[] in
  Alcotest.(check string)
    "key is deterministic" k
    (Pc.deck_key ~text:deck ~overrides:[]);
  Alcotest.(check bool)
    "text edit changes the key" false
    (String.equal k (Pc.deck_key ~text:deck_edited ~overrides:[]));
  Alcotest.(check bool)
    "override changes the key" false
    (String.equal k (Pc.deck_key ~text:deck ~overrides:[ ("r2", 2000.0) ]))

(* ------------------------------------------------------------------ *)
(* service: structured errors, never a crash *)

let test_malformed_requests () =
  let svc = Sv.create () in
  let check_code want line =
    let reply = handle1 svc line in
    Alcotest.(check string) "error type" "error" (msg_type reply);
    Alcotest.(check string) ("code for " ^ line) want (error_code reply)
  in
  check_code "parse-error" "this is not json";
  check_code "unknown-verb" {|{"verb": "warp"}|};
  check_code "bad-request" {|{"verb": "ac", "deck": "x"}|};
  check_code "bad-request" {|{"verb": "op"}|};
  check_code "deck-unreadable" {|{"verb": "op", "deck_path": "/nonexistent"}|};
  check_code "deck-unreadable" {|{"verb": "op", "deck": "r1 a\n.end"}|};
  (* unknown node in a valid deck *)
  let reply =
    handle1 svc
      (request ~verb:"op" ~deck ~params:{|{"nodes": ["nothere"]}|} ())
  in
  Alcotest.(check string) "bad node" "bad-request" (error_code reply);
  (* the service survives all of the above *)
  let reply = handle1 svc {|{"id": 1, "verb": "ping"}|} in
  Alcotest.(check string) "still alive" "response" (msg_type reply)

let test_lint_refused () =
  let svc = Sv.create () in
  let reply = handle1 svc (request ~verb:"op" ~deck:bad_lint_deck ()) in
  Alcotest.(check string) "refused" "error" (msg_type reply);
  Alcotest.(check string) "code" "lint-refused" (error_code reply);
  (* the embedded analyzer report is structured JSON, not a string *)
  (match member "lint" (member "error" reply) with
  | J.Obj _ -> ()
  | other -> Alcotest.failf "lint data not an object: %s" (J.to_string other));
  (* the lint verb reports instead of refusing *)
  let reply = handle1 svc (request ~verb:"lint" ~deck:bad_lint_deck ()) in
  Alcotest.(check string) "lint runs" "response" (msg_type reply);
  match member "failing" (member "result" reply) with
  | J.Bool true -> ()
  | other -> Alcotest.failf "expected failing=true, got %s" (J.to_string other)

let test_plan_cache_lifecycle () =
  let svc = Sv.create () in
  let note reply = J.to_string (plan_note reply) in
  let op d = handle1 svc (request ~verb:"op" ~deck:d ()) in
  Alcotest.(check string) "cold deck misses" {|"miss"|} (note (op deck));
  Alcotest.(check string) "warm deck hits" {|"hit"|} (note (op deck));
  let ac =
    handle1 svc
      (request ~verb:"ac" ~deck
         ~params:{|{"freqs": [1e6], "nodes": ["out"]}|} ())
  in
  Alcotest.(check string) "ac reuses the op plan" {|"hit"|} (note ac);
  Alcotest.(check string)
    "bias memoized too" {|"hit"|}
    (J.to_string (member "bias" (member "served" ac)));
  (* invalidation: editing the deck text changes the content key *)
  Alcotest.(check string)
    "edited deck misses" {|"miss"|}
    (note (op deck_edited));
  Alcotest.(check string)
    "original still resident" {|"hit"|} (note (op deck));
  let stats = Pc.stats (Sv.cache svc) in
  Alcotest.(check int) "two plans resident" 2 stats.Pc.plans;
  Alcotest.(check bool) "hits counted" true (stats.Pc.plan_hits >= 3)

(* batched sweep must be byte-identical to one-by-one serving *)
let batch_vs_individual jobs () =
  Snoise.Sweep.set_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Snoise.Sweep.set_jobs 1)
    (fun () ->
      let freq_sets =
        [ "[1e6, 3e6]"; "[2e6]"; "[1e6, 5e6, 9e6]"; "[3e6, 2e6]" ]
      in
      let req id freqs =
        request ~id ~verb:"ac" ~deck
          ~params:(Printf.sprintf {|{"freqs": %s, "nodes": ["out", "in"]}|} freqs)
          ()
      in
      (* batched: all queued before one drain *)
      let batched = Sv.create () in
      List.iteri
        (fun i freqs ->
          match Sv.submit batched ~client:1 (req i freqs) with
          | `Queued -> ()
          | _ -> Alcotest.fail "expected queued")
        freq_sets;
      let batched_replies = List.map snd (Sv.drain batched) in
      (* individual: a fresh service, one request at a time *)
      let indiv = Sv.create () in
      let indiv_replies =
        List.mapi (fun i freqs -> handle1 indiv (req i freqs)) freq_sets
      in
      List.iteri
        (fun i (b, s) ->
          Alcotest.(check string)
            (Printf.sprintf "request %d byte-identical (jobs %d)" i jobs)
            (result_str s) (result_str b);
          match member "batched" (member "served" b) with
          | J.Num n when int_of_float n = List.length freq_sets -> ()
          | other ->
            Alcotest.failf "expected batched=%d, got %s"
              (List.length freq_sets) (J.to_string other))
        (List.combine batched_replies indiv_replies))

let test_batch_errors_all_members () =
  let svc = Sv.create () in
  List.iter
    (fun i ->
      match
        Sv.submit svc ~client:1
          (request ~id:i ~verb:"ac" ~deck:bad_lint_deck
             ~params:{|{"freqs": [1e6], "nodes": ["in"]}|} ())
      with
      | `Queued -> ()
      | _ -> Alcotest.fail "expected queued")
    [ 1; 2 ];
  let replies = List.map snd (Sv.drain svc) in
  Alcotest.(check int) "both answered" 2 (List.length replies);
  List.iter
    (fun r -> Alcotest.(check string) "each refused" "lint-refused" (error_code r))
    replies;
  (* each member keeps its own id *)
  let ids =
    List.map (fun r -> J.to_string (member "id" r)) replies
    |> List.sort String.compare
  in
  Alcotest.(check (list string)) "distinct ids" [ "1"; "2" ] ids

let test_quota_and_backpressure () =
  let config =
    { Sv.default_config with max_queue = 4; client_quota = 2; max_decks = 8;
      tran_max_points = 1000 }
  in
  let svc = Sv.create ~config () in
  let submit client id =
    Sv.submit svc ~client (request ~id ~verb:"op" ~deck ())
  in
  (match submit 1 1 with `Queued -> () | _ -> Alcotest.fail "q1");
  (match submit 1 2 with `Queued -> () | _ -> Alcotest.fail "q2");
  (match submit 1 3 with
  | `Replied r ->
    Alcotest.(check string) "third is over quota" "quota-exceeded"
      (error_code r)
  | _ -> Alcotest.fail "expected quota refusal");
  (* another client still gets in *)
  (match submit 2 4 with `Queued -> () | _ -> Alcotest.fail "client 2");
  (match submit 3 5 with `Queued -> () | _ -> Alcotest.fail "client 3");
  (* queue now full (4): anyone is refused busy, with a retry hint *)
  (match submit 4 6 with
  | `Replied r ->
    Alcotest.(check string) "full queue is busy" "busy" (error_code r);
    (match member "retry_after_ms" (member "error" r) with
    | J.Num _ -> ()
    | other -> Alcotest.failf "retry hint: %s" (J.to_string other))
  | _ -> Alcotest.fail "expected busy refusal");
  (* draining frees the queue and resets the per-client counts *)
  let replies = Sv.drain svc in
  Alcotest.(check int) "all queued served" 4 (List.length replies);
  match submit 1 7 with
  | `Queued -> ()
  | _ -> Alcotest.fail "quota resets after drain"

let test_stats_shape () =
  let svc = Sv.create () in
  ignore (handle1 svc (request ~verb:"op" ~deck ()));
  ignore (handle1 svc "garbage");
  let stats = Sv.stats_json svc in
  List.iter
    (fun k -> ignore (member k stats))
    [
      "uptime_s"; "requests"; "responses"; "errors"; "by_verb"; "queue";
      "batch"; "plan_cache"; "timings_ms"; "pool"; "tile_cache"; "reduction";
      "memory"; "cancel"; "restarts"; "journal";
    ];
  ignore (member "reductions" (member "reduction" stats));
  ignore (member "origin" (member "tile_cache" stats));
  (* the new resilience counters *)
  List.iter
    (fun k -> ignore (member k (member "plan_cache" stats)))
    [ "plan_words"; "shed_plans"; "flows"; "flow_capacity"; "flow_evictions" ];
  List.iter
    (fun k -> ignore (member k (member "memory" stats)))
    [ "watermark_mb"; "heap_mb"; "shed_events"; "rejected_memory" ];
  List.iter
    (fun k -> ignore (member k (member "cancel" stats)))
    [ "deadline_exceeded"; "disconnected" ];
  match member "plan_misses" (member "plan_cache" stats) with
  | J.Num n when n >= 1.0 -> ()
  | other -> Alcotest.failf "plan_misses: %s" (J.to_string other)


(* ------------------------------------------------------------------ *)
(* server-side model-order reduction via reserved override keys *)

let ladder_deck =
  let b = Buffer.create 512 in
  Buffer.add_string b "* reducible ladder\n*%snoise reduce keep=out\n";
  Buffer.add_string b "vin in 0 dc 0 ac 1\nrdrv in p0 50\n";
  for i = 0 to 23 do
    Buffer.add_string b (Printf.sprintf "rl%d p%d p%d 100\n" i i (i + 1));
    Buffer.add_string b (Printf.sprintf "cl%d p%d 0 1p\n" (i + 1) (i + 1))
  done;
  Buffer.add_string b "rout p24 out 100\nrload out 0 10k\n.end\n";
  Buffer.contents b

let ac_request ?overrides () =
  Printf.sprintf
    {|{"id": 1, "verb": "ac", "deck": %s, "params": {"freqs": [1e6, 1e8, 1e9], "nodes": ["out"]}%s}|}
    (J.to_string (J.Str ladder_deck))
    (match overrides with
    | None -> ""
    | Some ov -> Printf.sprintf {|, "overrides": %s|} ov)

let out_values reply =
  match J.to_list (member "points" (member "result" reply)) with
  | None -> Alcotest.fail "points not a list"
  | Some pts ->
    List.map
      (fun p ->
        match J.to_list (member "out" (member "v" p)) with
        | Some [ re; im ] ->
          {
            Complex.re = Option.get (J.to_float re);
            im = Option.get (J.to_float im);
          }
        | _ -> Alcotest.fail "v.out not a [re, im] pair")
      pts

let test_reduce_overrides () =
  let svc = Sv.create () in
  Snoise.Reduced_model.reset_stats ();
  let exact = handle1 svc (ac_request ()) in
  let reduced =
    handle1 svc (ac_request ~overrides:{|{"reduce_tol": 1e-8}|} ())
  in
  Alcotest.(check string) "exact deck misses" {|"miss"|}
    (J.to_string (plan_note exact));
  Alcotest.(check string)
    "reduce override compiles its own plan" {|"miss"|}
    (J.to_string (plan_note reduced));
  Alcotest.(check bool) "a reduction ran" true
    (Snoise.Reduced_model.reductions () >= 1);
  let ve = out_values exact and vr = out_values reduced in
  let vmax =
    List.fold_left (fun a c -> Float.max a (Complex.norm c)) 0.0 ve
  in
  List.iter2
    (fun e r ->
      let err = Complex.norm (Complex.sub e r) /. vmax in
      Alcotest.(check bool)
        (Printf.sprintf "reduced transfer tracks exact (err %.2e)" err)
        true (err < 1e-4))
    ve vr;
  (* fixed-order spelling works too and lands on the same answer *)
  let fixed =
    handle1 svc (ac_request ~overrides:{|{"reduce_order": 6}|} ())
  in
  let vf = out_values fixed in
  List.iter2
    (fun e f ->
      let err = Complex.norm (Complex.sub e f) /. vmax in
      Alcotest.(check bool)
        (Printf.sprintf "fixed order tracks exact (err %.2e)" err)
        true (err < 1e-4))
    ve vf;
  (* validation: structured refusals, not crashes *)
  let check_bad name ov =
    let reply = handle1 svc (ac_request ~overrides:ov ()) in
    Alcotest.(check string) name "bad-request" (error_code reply)
  in
  check_bad "fractional order refused" {|{"reduce_order": 0.5}|};
  check_bad "conflicting modes refused"
    {|{"reduce_order": 4, "reduce_tol": 1e-6}|};
  check_bad "dangling s0 refused" {|{"reduce_s0": 1e8}|};
  check_bad "out-of-range tol refused" {|{"reduce_tol": 2.0}|}

(* ------------------------------------------------------------------ *)
(* the verify verb: deck pre-flight, tile-cache and plan-cache modes *)

let illcond_deck_text =
  "* conditioning span\ni1 0 a dc 1m\nrbig a b 1e-20\nr2 b 0 1\n.end\n"

let check_schema_version result =
  match member "schema_version" result with
  | J.Num n when n = float_of_int Sn_analysis.Analyzer.schema_version -> ()
  | other -> Alcotest.failf "schema_version: %s" (J.to_string other)

let test_verify_verb () =
  let svc = Sv.create () in
  (* deck mode: a clean deck verifies *)
  let clean = handle1 svc (request ~verb:"verify" ~deck ()) in
  Alcotest.(check string) "clean is a response" "response" (msg_type clean);
  let result = member "result" clean in
  Alcotest.(check string) "deck mode" {|"deck"|}
    (J.to_string (member "mode" result));
  check_schema_version result;
  Alcotest.(check string) "clean deck not failing" "false"
    (J.to_string (member "failing" result));
  Alcotest.(check string) "nothing reduced" {|"not-reduced"|}
    (J.to_string (member "reduction" result));
  (* deck mode: an ill-conditioned deck fails with a populated
     conditioning analysis *)
  let ill =
    handle1 svc (request ~id:2 ~verb:"verify" ~deck:illcond_deck_text ())
  in
  let r = member "result" ill in
  Alcotest.(check string) "ill-conditioned deck failing" "true"
    (J.to_string (member "failing" r));
  (match J.to_list (member "conditioning" r) with
  | Some (_ :: _) -> ()
  | _ -> Alcotest.fail "conditioning analysis empty");
  (* plans mode: a reduced ac request leaves a certified resident
     plan, and hash-only re-verification finds it healthy *)
  let ac = handle1 svc (ac_request ~overrides:{|{"reduce_order": 4}|} ()) in
  Alcotest.(check string) "reduced ac served" "response" (msg_type ac);
  let plans = handle1 svc (request ~id:3 ~verb:"verify" ()) in
  let pr = member "result" plans in
  Alcotest.(check string) "plans mode" {|"plans"|}
    (J.to_string (member "mode" pr));
  check_schema_version pr;
  let n_of field =
    match member field pr with
    | J.Num n -> int_of_float n
    | other -> Alcotest.failf "%s: %s" field (J.to_string other)
  in
  Alcotest.(check bool) "plans resident" true (n_of "plans" >= 1);
  Alcotest.(check bool) "a certified plan" true (n_of "certified" >= 1);
  Alcotest.(check int) "no bad plans" 0 (n_of "bad");
  Alcotest.(check string) "plan cache healthy" "false"
    (J.to_string (member "failing" pr));
  (match
     member "certified_plans" (member "plan_cache" (Sv.stats_json svc))
   with
  | J.Num n when n >= 1.0 -> ()
  | other -> Alcotest.failf "stats certified_plans: %s" (J.to_string other));
  (* cache mode dispatches on params.cache_dir *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "snoise_verify_verb_%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let cached =
    handle1 svc
      (request ~id:4 ~verb:"verify"
         ~params:(Printf.sprintf {|{"cache_dir": %s}|} (J.to_string (J.Str dir)))
         ())
  in
  let cr = member "result" cached in
  Alcotest.(check string) "cache mode" {|"cache"|}
    (J.to_string (member "mode" cr));
  Alcotest.(check string) "empty cache dir passes" "false"
    (J.to_string (member "failing" cr));
  (* structured refusals: both sources, and a missing directory *)
  let both =
    handle1 svc
      (request ~id:5 ~verb:"verify" ~deck
         ~params:(Printf.sprintf {|{"cache_dir": %s}|} (J.to_string (J.Str dir)))
         ())
  in
  Alcotest.(check string) "deck+cache_dir refused" "bad-request"
    (error_code both);
  let missing =
    handle1 svc
      (request ~id:6 ~verb:"verify"
         ~params:{|{"cache_dir": "/nonexistent/snoise"}|} ())
  in
  Alcotest.(check string) "missing dir refused" "bad-request"
    (error_code missing)

(* ------------------------------------------------------------------ *)
(* fuzz: the wire parser is total *)

(* Mutate valid documents (including a realistic request line) at
   random byte positions: parse must never raise — only [Error _] or a
   value whose rendering round-trips stably. *)
let prop_json_fuzz =
  let docs =
    [|
      {|{"id": 1, "verb": "ac", "deck": "v1 in 0 dc 1 ac 1\nr1 in out 1k\n.end\n", "params": {"freqs": [1e6, 2.5e6], "nodes": ["out"]}, "deadline_ms": 125.5}|};
      {|{"a": [1, 2.5, -3e-7, true, false, null], "b": {"c": "d\ne\u0041"}}|};
      {|[[[]], {}, "\u0068\ud83d\ude00", 1e300, -0.0, 123456789012345]|};
      {|{"overrides": {"r1": 2e3}, "auth_token": "s3cret", "deck_path": "/x"}|};
    |]
  in
  QCheck.Test.make ~count:1000 ~name:"Json.parse total on mutated documents"
    QCheck.(
      pair
        (int_range 0 (Array.length docs - 1))
        (small_list (pair small_nat (int_range 0 255))))
    (fun (di, muts) ->
      let doc = Bytes.of_string docs.(di) in
      List.iter
        (fun (p, c) -> Bytes.set doc (p mod Bytes.length doc) (Char.chr c))
        muts;
      let mutated = Bytes.to_string doc in
      match J.parse mutated with
      | Error _ -> true
      | Ok j -> (
        let printed = J.to_string j in
        match J.parse printed with
        | Ok j2 -> String.equal printed (J.to_string j2)
        | Error _ -> false)
      | exception _ -> false)

(* ------------------------------------------------------------------ *)
(* deadlines *)

let deadline_line ?(id = 1) ms =
  Printf.sprintf
    {|{"id": %d, "verb": "ac", "deck": %s, "params": {"freqs": [1e6, 2e6], "nodes": ["out"]}, "deadline_ms": %s}|}
    id
    (J.to_string (J.Str deck))
    ms

let deadline_exceeded_at jobs () =
  Snoise.Sweep.set_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Snoise.Sweep.set_jobs 1)
    (fun () ->
      let svc = Sv.create () in
      (* a deadline this small has always passed by dispatch time, so
         the refusal is deterministic at any pool width *)
      let reply = handle1 svc (deadline_line "1e-6") in
      Alcotest.(check string) "refused" "error" (msg_type reply);
      Alcotest.(check string)
        "stable code" "deadline-exceeded" (error_code reply);
      (match member "progress" (member "error" reply) with
      | J.Obj _ -> ()
      | other -> Alcotest.failf "progress: %s" (J.to_string other));
      Alcotest.(check string)
        "reason" {|"deadline"|}
        (J.to_string (member "reason" (member "error" reply)));
      (* the pool slot was freed: subsequent work still runs *)
      let ok = handle1 svc (request ~id:2 ~verb:"op" ~deck ()) in
      Alcotest.(check string) "service survives" "response" (msg_type ok);
      (* a generous deadline is not a refusal *)
      let ok2 = handle1 svc (deadline_line ~id:3 "60000") in
      Alcotest.(check string) "generous deadline" "response" (msg_type ok2);
      (* the counter moved *)
      match member "deadline_exceeded" (member "cancel" (Sv.stats_json svc))
      with
      | J.Num n when n >= 1.0 -> ()
      | other -> Alcotest.failf "counter: %s" (J.to_string other))

let test_deadline_validation () =
  let svc = Sv.create () in
  List.iter
    (fun bad ->
      let reply = handle1 svc (deadline_line bad) in
      Alcotest.(check string)
        ("rejects deadline_ms " ^ bad)
        "bad-request" (error_code reply))
    [ "0"; "-5"; {|"soon"|}; "1e999" ];
  (* null means no deadline *)
  let ok = handle1 svc (deadline_line "null") in
  Alcotest.(check string) "null accepted" "response" (msg_type ok)

(* requests with different deadlines must not coalesce into one group
   (the group would cancel at the earliest member's deadline) *)
let test_deadline_no_coalesce () =
  let svc = Sv.create () in
  let submit id ms =
    match Sv.submit svc ~client:1 (deadline_line ~id ms) with
    | `Queued -> ()
    | _ -> Alcotest.fail "expected queued"
  in
  submit 1 "60000";
  submit 2 "120000";
  let replies = List.map snd (Sv.drain svc) in
  Alcotest.(check int) "both served" 2 (List.length replies);
  List.iter
    (fun r ->
      Alcotest.(check string) "served" "response" (msg_type r);
      match member "batched" (member "served" r) with
      | J.Num 1.0 -> ()
      | other ->
        Alcotest.failf "mixed deadlines coalesced: %s" (J.to_string other))
    replies

(* ------------------------------------------------------------------ *)
(* health *)

let test_health_verb () =
  let svc = Sv.create () in
  let reply = handle1 svc {|{"id": 9, "verb": "health"}|} in
  Alcotest.(check string) "response" "response" (msg_type reply);
  let r = member "result" reply in
  Alcotest.(check string) "ready" {|"ok"|} (J.to_string (member "status" r));
  List.iter
    (fun k -> ignore (member k r))
    [ "status"; "uptime_s"; "queue"; "pool"; "cache"; "memory"; "restarts" ];
  ignore (member "depth" (member "queue" r));
  ignore (member "flows" (member "cache" r));
  match member "shedding" (member "memory" r) with
  | J.Bool false -> ()
  | other -> Alcotest.failf "shedding: %s" (J.to_string other)

(* ------------------------------------------------------------------ *)
(* load shedding under memory pressure *)

let test_memory_watermark () =
  (* a 1 MB watermark is below any live OCaml heap, so every work
     request sheds and refuses; control verbs keep answering *)
  let config = { Sv.default_config with mem_watermark_mb = 1 } in
  let svc = Sv.create ~config () in
  let reply = handle1 svc (request ~verb:"op" ~deck ()) in
  Alcotest.(check string) "busy under pressure" "busy" (error_code reply);
  (match member "retry_after_ms" (member "error" reply) with
  | J.Num _ -> ()
  | other -> Alcotest.failf "retry hint: %s" (J.to_string other));
  let stats = Sv.stats_json svc in
  (match member "rejected_memory" (member "memory" stats) with
  | J.Num n when n >= 1.0 -> ()
  | other -> Alcotest.failf "rejected_memory: %s" (J.to_string other));
  (* liveness endpoints still answer, and report the degradation *)
  let health = handle1 svc {|{"verb": "health"}|} in
  Alcotest.(check string) "health served" "response" (msg_type health);
  Alcotest.(check string)
    "degraded" {|"degraded"|}
    (J.to_string (member "status" (member "result" health)));
  match member "shedding" (member "memory" (member "result" health)) with
  | J.Bool true -> ()
  | other -> Alcotest.failf "shedding flag: %s" (J.to_string other)

(* ------------------------------------------------------------------ *)
(* constant-time auth compare *)

let test_auth_equal_const () =
  let module A = Sn_server.Auth in
  Alcotest.(check bool) "equal" true (A.equal_const "s3cret" "s3cret");
  Alcotest.(check bool) "case differs" false (A.equal_const "s3cret" "s3creT");
  Alcotest.(check bool) "prefix" false (A.equal_const "s3cret" "s3c");
  Alcotest.(check bool) "longer" false (A.equal_const "s3cret" "s3cretx");
  Alcotest.(check bool) "empty given" false (A.equal_const "s3cret" "");
  Alcotest.(check bool)
    "no token configured is not a free pass" false (A.equal_const "" "")

(* ------------------------------------------------------------------ *)
(* warmup journal *)

let test_journal_roundtrip () =
  let module Jr = Sn_server.Journal in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "snoise-journal-%d.bin" (Unix.getpid ()))
  in
  (try Sys.remove path with Sys_error _ -> ());
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let j = Jr.open_ ~path in
      let e1 = { Jr.text = "deck one\n.end\n"; overrides = [ ("r1", 2.0e3) ] } in
      let e2 = { Jr.text = "deck two\n.end\n"; overrides = [] } in
      Jr.append j e1;
      Jr.append j e2;
      Alcotest.(check int) "recorded" 2 (Jr.recorded j);
      (match Jr.replay ~path with
      | [ a; b ] ->
        Alcotest.(check string) "first text" e1.Jr.text a.Jr.text;
        Alcotest.(check (list (pair string (float 0.0))))
          "first overrides" e1.Jr.overrides a.Jr.overrides;
        Alcotest.(check string) "second text" e2.Jr.text b.Jr.text
      | l -> Alcotest.failf "replayed %d entries" (List.length l));
      (* a truncated tail (death mid-append) just shortens the replay *)
      let size = (Unix.stat path).Unix.st_size in
      Unix.truncate path (size - 3);
      (match Jr.replay ~path with
      | [ a ] -> Alcotest.(check string) "first survives" e1.Jr.text a.Jr.text
      | l -> Alcotest.failf "after truncation: %d entries" (List.length l));
      (* a flipped byte in the first record empties the replay — the
         digest refuses to feed Marshal damaged bytes *)
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      ignore (Unix.lseek fd 50 Unix.SEEK_SET);
      ignore (Unix.write_substring fd "X" 0 1);
      Unix.close fd;
      Alcotest.(check int)
        "corrupt record is a miss" 0
        (List.length (Jr.replay ~path));
      (* a missing file is an empty replay, not an error *)
      Alcotest.(check int)
        "missing file" 0
        (List.length (Jr.replay ~path:(path ^ ".nope"))))

let test_warm_restart () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "snoise-warm-%d.journal" (Unix.getpid ()))
  in
  (try Sys.remove path with Sys_error _ -> ());
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let config = { Sv.default_config with warmup_journal = Some path } in
      let first = Sv.create ~config () in
      ignore (handle1 first (request ~verb:"op" ~deck ()));
      ignore (handle1 first (request ~id:2 ~verb:"op" ~deck ()));
      (* a "restarted" worker: fresh state, same journal *)
      let second = Sv.create ~config () in
      Alcotest.(check (pair int int))
        "one plan replayed, none failed" (1, 0)
        (Sv.warm_from_journal second);
      let reply = handle1 second (request ~verb:"op" ~deck ()) in
      Alcotest.(check string)
        "first request after restart is already warm" {|"hit"|}
        (J.to_string (plan_note reply));
      (* the replay is visible in stats *)
      match member "journal" (Sv.stats_json second) with
      | J.Obj _ as j -> (
        match member "replayed" j with
        | J.Num 1.0 -> ()
        | other -> Alcotest.failf "replayed: %s" (J.to_string other))
      | other -> Alcotest.failf "journal stats: %s" (J.to_string other))

(* ------------------------------------------------------------------ *)
(* disconnect shedding at the dispatch boundary *)

let test_drain_sheds_dead_clients () =
  let svc = Sv.create () in
  List.iter
    (fun (client, id) ->
      match Sv.submit svc ~client (request ~id ~verb:"op" ~deck ()) with
      | `Queued -> ()
      | _ -> Alcotest.fail "expected queued")
    [ (1, 1); (2, 2) ];
  (* client 2 hung up before dispatch: its work is dropped unrun *)
  let replies = Sv.drain ~alive:(fun client -> client = 1) svc in
  Alcotest.(check int) "only the live client served" 1 (List.length replies);
  Alcotest.(check int) "addressed to client 1" 1 (fst (List.hd replies));
  match member "disconnected" (member "cancel" (Sv.stats_json svc)) with
  | J.Num 1.0 -> ()
  | other -> Alcotest.failf "disconnected: %s" (J.to_string other)


(* ------------------------------------------------------------------ *)
(* a real socket session against a threaded server *)

let test_socket_session () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "snoise-test-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let server = Srv.create ~socket:path () in
  let th = Thread.create (fun () -> Srv.serve server) () in
  Fun.protect
    ~finally:(fun () ->
      Srv.stop server;
      Thread.join th)
    (fun () ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let ic = Unix.in_channel_of_descr fd in
      let send lines =
        let s = String.concat "\n" lines ^ "\n" in
        ignore (Unix.write_substring fd s 0 (String.length s))
      in
      let recv () =
        match In_channel.input_line ic with
        | Some l -> (
          match J.parse l with
          | Ok j -> j
          | Error e -> Alcotest.failf "bad reply %S: %s" l e)
        | None -> Alcotest.fail "server closed early"
      in
      send
        [
          {|{"id": 1, "verb": "ping"}|};
          "not json at all";
          request ~id:2 ~verb:"op" ~deck ();
        ];
      let ping = recv () in
      Alcotest.(check string) "ping" "response" (msg_type ping);
      let bad = recv () in
      Alcotest.(check string)
        "malformed answered, not disconnected" "parse-error" (error_code bad);
      let op = recv () in
      Alcotest.(check string) "op served" "response" (msg_type op);
      (* warm repeat over the same connection: plan cache hit *)
      send [ request ~id:3 ~verb:"op" ~deck () ];
      let warm = recv () in
      Alcotest.(check string)
        "warm repeat hits" {|"hit"|}
        (J.to_string (plan_note warm));
      (* clean shutdown via the protocol *)
      send [ {|{"id": 4, "verb": "shutdown"}|} ];
      let bye = recv () in
      Alcotest.(check string) "shutdown acked" "response" (msg_type bye);
      Unix.close fd;
      Thread.join th;
      Alcotest.(check bool)
        "socket file removed" false (Sys.file_exists path))

(* TCP endpoint with --auth-token: unauthorized until the shared
   secret is presented; the Unix socket never needs it *)
let test_tcp_auth_session () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "snoise-test-auth-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let server =
    Srv.create ~socket:path ~tcp:("127.0.0.1", 0) ~auth_token:"hunter2" ()
  in
  let port =
    match Srv.tcp_port server with
    | Some p -> p
    | None -> Alcotest.fail "no TCP port bound"
  in
  let th = Thread.create (fun () -> Srv.serve server) () in
  Fun.protect
    ~finally:(fun () ->
      Srv.stop server;
      Thread.join th)
    (fun () ->
      let session fd =
        let ic = Unix.in_channel_of_descr fd in
        let send line =
          let s = line ^ "\n" in
          ignore (Unix.write_substring fd s 0 (String.length s))
        in
        let recv () =
          match In_channel.input_line ic with
          | Some l -> (
            match J.parse l with
            | Ok j -> j
            | Error e -> Alcotest.failf "bad reply %S: %s" l e)
          | None -> Alcotest.fail "server closed early"
        in
        (send, recv)
      in
      let tcp = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect tcp (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let send, recv = session tcp in
      (* no token: stable unauthorized error, connection stays up *)
      send {|{"id": 1, "verb": "ping"}|};
      let denied = recv () in
      Alcotest.(check string) "unauthorized" "unauthorized" (error_code denied);
      Alcotest.(check string) "id echoed" "1" (J.to_string (member "id" denied));
      (* wrong token: still denied, still connected *)
      send {|{"id": 2, "verb": "ping", "auth_token": "wrong"}|};
      Alcotest.(check string)
        "wrong token denied" "unauthorized"
        (error_code (recv ()));
      (* the shared secret authenticates the connection... *)
      send {|{"id": 3, "verb": "ping", "auth_token": "hunter2"}|};
      Alcotest.(check string) "token accepted" "response" (msg_type (recv ()));
      (* ...and later lines need no token *)
      send {|{"id": 4, "verb": "ping"}|};
      Alcotest.(check string)
        "connection stays authenticated" "response"
        (msg_type (recv ()));
      Unix.close tcp;
      (* the Unix socket is exempt *)
      let ux = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect ux (Unix.ADDR_UNIX path);
      let send, recv = session ux in
      send {|{"id": 5, "verb": "ping"}|};
      Alcotest.(check string)
        "unix socket needs no token" "response"
        (msg_type (recv ()));
      Unix.close ux)

let suites =
  [
    ( "server-json",
      [
        Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "special values" `Quick test_json_specials;
        Alcotest.test_case "parse errors" `Quick test_json_errors;
        QCheck_alcotest.to_alcotest prop_json_fuzz;
      ] );
    ( "server-protocol",
      [
        Alcotest.test_case "request parsing" `Quick test_protocol_parse;
        Alcotest.test_case "cache keys" `Quick test_cache_key;
      ] );
    ( "server-service",
      [
        Alcotest.test_case "malformed requests" `Quick test_malformed_requests;
        Alcotest.test_case "lint refusal" `Quick test_lint_refused;
        Alcotest.test_case "plan cache lifecycle" `Quick
          test_plan_cache_lifecycle;
        Alcotest.test_case "batch identity (jobs 1)" `Quick
          (batch_vs_individual 1);
        Alcotest.test_case "batch identity (jobs 4)" `Quick
          (batch_vs_individual 4);
        Alcotest.test_case "batch errors reach all members" `Quick
          test_batch_errors_all_members;
        Alcotest.test_case "quota and backpressure" `Quick
          test_quota_and_backpressure;
        Alcotest.test_case "stats shape" `Quick test_stats_shape;
        Alcotest.test_case "reduce overrides" `Quick test_reduce_overrides;
        Alcotest.test_case "verify verb" `Quick test_verify_verb;
        Alcotest.test_case "health verb" `Quick test_health_verb;
        Alcotest.test_case "deadline exceeded (jobs 1)" `Quick
          (deadline_exceeded_at 1);
        Alcotest.test_case "deadline exceeded (jobs 4)" `Quick
          (deadline_exceeded_at 4);
        Alcotest.test_case "deadline validation" `Quick
          test_deadline_validation;
        Alcotest.test_case "mixed deadlines do not coalesce" `Quick
          test_deadline_no_coalesce;
        Alcotest.test_case "memory watermark sheds" `Quick
          test_memory_watermark;
        Alcotest.test_case "auth constant-time compare" `Quick
          test_auth_equal_const;
        Alcotest.test_case "journal round-trip" `Quick test_journal_roundtrip;
        Alcotest.test_case "warm restart from journal" `Quick
          test_warm_restart;
        Alcotest.test_case "drain sheds dead clients" `Quick
          test_drain_sheds_dead_clients;
      ] );
    ( "server-socket",
      [
        Alcotest.test_case "session" `Quick test_socket_session;
        Alcotest.test_case "tcp auth" `Quick test_tcp_auth_session;
      ] );
  ]
