(* The resident service: wire protocol round-trips, structured errors
   on malformed input, plan-cache hit/miss/invalidation, coalesced
   batching byte-identity, quota/backpressure, and a real socket
   session against a threaded server. *)

module J = Sn_server.Json
module P = Sn_server.Protocol
module Sv = Sn_server.Service
module Srv = Sn_server.Server
module Pc = Sn_server.Plan_cache

let deck =
  "* rc divider\nv1 in 0 dc 1 ac 1\nr1 in out 1k\nr2 out 0 1k\n.end\n"

(* same topology, different value: a distinct content key *)
let deck_edited =
  "* rc divider\nv1 in 0 dc 1 ac 1\nr1 in out 1k\nr2 out 0 2k\n.end\n"

let bad_lint_deck =
  "* voltage source loop\nv1 in 0 1.0\nv2 in 0 2.0\nr1 in 0 1k\n.end\n"

let member name j =
  match J.member name j with
  | Some v -> v
  | None -> Alcotest.failf "reply lacks %S: %s" name (J.to_string j)

let str j =
  match J.to_str j with
  | Some s -> s
  | None -> Alcotest.failf "not a string: %s" (J.to_string j)

let msg_type reply = str (member "type" reply)

let error_code reply = str (member "code" (member "error" reply))

let plan_note reply = member "plan" (member "served" reply)

let result_str reply = J.to_string (member "result" reply)

let handle1 svc line =
  match Sv.handle svc ~client:1 line with
  | [ r ] -> r
  | rs -> Alcotest.failf "expected 1 reply, got %d" (List.length rs)

let request ?(id = 1) ~verb ?deck:d ?params () =
  let fields =
    [ ("id", string_of_int id); ("verb", Printf.sprintf "%S" verb) ]
    @ (match d with
      | Some text -> [ ("deck", J.to_string (J.Str text)) ]
      | None -> [])
    @ match params with Some p -> [ ("params", p) ] | None -> []
  in
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields)
  ^ "}"

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_roundtrip () =
  let cases =
    [
      {|{"a": [1, 2.5, -0.03], "b": "x\ny\u0041\u00e9", "c": [true, false, null]}|};
      {|[1e300, 1e-300, 0, -0, 123456789012345]|};
      {|{"nested": {"deep": [[[{"k": "v"}]]]}}|};
      {|"\u0068\u0065\ud83d\ude00"|};
    ]
  in
  List.iter
    (fun s ->
      match J.parse s with
      | Error e -> Alcotest.failf "parse %s: %s" s e
      | Ok j -> (
        let s2 = J.to_string j in
        match J.parse s2 with
        | Error e -> Alcotest.failf "reparse %s: %s" s2 e
        | Ok j2 ->
          Alcotest.(check string) "print is stable" s2 (J.to_string j2)))
    cases

let test_json_specials () =
  (* non-finite floats render as strings (the Diag.to_json convention)
     and integers render bare *)
  Alcotest.(check string) "nan" {|"nan"|} (J.to_string (J.Num Float.nan));
  Alcotest.(check string) "inf" {|"inf"|}
    (J.to_string (J.Num Float.infinity));
  Alcotest.(check string) "int" "42" (J.to_string (J.Num 42.0));
  Alcotest.(check string)
    "escape" {|"a\"b\\c\nd"|}
    (J.to_string (J.Str "a\"b\\c\nd"))

let test_json_errors () =
  List.iter
    (fun s ->
      match J.parse s with
      | Ok j -> Alcotest.failf "accepted %S as %s" s (J.to_string j)
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "1 2"; "\"\\x\""; "{\"a\" 1}" ]

(* ------------------------------------------------------------------ *)
(* protocol *)

let test_protocol_parse () =
  let parse s =
    match J.parse s with
    | Ok j -> P.parse_request j
    | Error e -> Alcotest.fail e
  in
  (match parse {|{"id": 7, "verb": "ac", "deck": "x", "overrides": {"r1": 2e3}}|}
   with
  | Ok req ->
    Alcotest.(check string) "verb" "ac" (P.verb_name req.P.verb);
    Alcotest.(check (list (pair string (float 0.0))))
      "overrides" [ ("r1", 2000.0) ] req.P.overrides
  | Error (_, m) -> Alcotest.fail m);
  (match parse {|{"verb": "warp"}|} with
  | Error (P.Unknown_verb, _) -> ()
  | _ -> Alcotest.fail "unknown verb accepted");
  (match parse {|{"verb": "op", "deck": "x", "deck_path": "y"}|} with
  | Error (P.Bad_request, _) -> ()
  | _ -> Alcotest.fail "deck+deck_path accepted");
  (match parse {|{"verb": "op", "overrides": {"r1": "big"}}|} with
  | Error (P.Bad_request, _) -> ()
  | _ -> Alcotest.fail "non-numeric override accepted");
  match parse {|[1, 2]|} with
  | Error (P.Bad_request, _) -> ()
  | _ -> Alcotest.fail "non-object accepted"

let test_cache_key () =
  let k = Pc.deck_key ~text:deck ~overrides:[] in
  Alcotest.(check string)
    "key is deterministic" k
    (Pc.deck_key ~text:deck ~overrides:[]);
  Alcotest.(check bool)
    "text edit changes the key" false
    (String.equal k (Pc.deck_key ~text:deck_edited ~overrides:[]));
  Alcotest.(check bool)
    "override changes the key" false
    (String.equal k (Pc.deck_key ~text:deck ~overrides:[ ("r2", 2000.0) ]))

(* ------------------------------------------------------------------ *)
(* service: structured errors, never a crash *)

let test_malformed_requests () =
  let svc = Sv.create () in
  let check_code want line =
    let reply = handle1 svc line in
    Alcotest.(check string) "error type" "error" (msg_type reply);
    Alcotest.(check string) ("code for " ^ line) want (error_code reply)
  in
  check_code "parse-error" "this is not json";
  check_code "unknown-verb" {|{"verb": "warp"}|};
  check_code "bad-request" {|{"verb": "ac", "deck": "x"}|};
  check_code "bad-request" {|{"verb": "op"}|};
  check_code "deck-unreadable" {|{"verb": "op", "deck_path": "/nonexistent"}|};
  check_code "deck-unreadable" {|{"verb": "op", "deck": "r1 a\n.end"}|};
  (* unknown node in a valid deck *)
  let reply =
    handle1 svc
      (request ~verb:"op" ~deck ~params:{|{"nodes": ["nothere"]}|} ())
  in
  Alcotest.(check string) "bad node" "bad-request" (error_code reply);
  (* the service survives all of the above *)
  let reply = handle1 svc {|{"id": 1, "verb": "ping"}|} in
  Alcotest.(check string) "still alive" "response" (msg_type reply)

let test_lint_refused () =
  let svc = Sv.create () in
  let reply = handle1 svc (request ~verb:"op" ~deck:bad_lint_deck ()) in
  Alcotest.(check string) "refused" "error" (msg_type reply);
  Alcotest.(check string) "code" "lint-refused" (error_code reply);
  (* the embedded analyzer report is structured JSON, not a string *)
  (match member "lint" (member "error" reply) with
  | J.Obj _ -> ()
  | other -> Alcotest.failf "lint data not an object: %s" (J.to_string other));
  (* the lint verb reports instead of refusing *)
  let reply = handle1 svc (request ~verb:"lint" ~deck:bad_lint_deck ()) in
  Alcotest.(check string) "lint runs" "response" (msg_type reply);
  match member "failing" (member "result" reply) with
  | J.Bool true -> ()
  | other -> Alcotest.failf "expected failing=true, got %s" (J.to_string other)

let test_plan_cache_lifecycle () =
  let svc = Sv.create () in
  let note reply = J.to_string (plan_note reply) in
  let op d = handle1 svc (request ~verb:"op" ~deck:d ()) in
  Alcotest.(check string) "cold deck misses" {|"miss"|} (note (op deck));
  Alcotest.(check string) "warm deck hits" {|"hit"|} (note (op deck));
  let ac =
    handle1 svc
      (request ~verb:"ac" ~deck
         ~params:{|{"freqs": [1e6], "nodes": ["out"]}|} ())
  in
  Alcotest.(check string) "ac reuses the op plan" {|"hit"|} (note ac);
  Alcotest.(check string)
    "bias memoized too" {|"hit"|}
    (J.to_string (member "bias" (member "served" ac)));
  (* invalidation: editing the deck text changes the content key *)
  Alcotest.(check string)
    "edited deck misses" {|"miss"|}
    (note (op deck_edited));
  Alcotest.(check string)
    "original still resident" {|"hit"|} (note (op deck));
  let stats = Pc.stats (Sv.cache svc) in
  Alcotest.(check int) "two plans resident" 2 stats.Pc.plans;
  Alcotest.(check bool) "hits counted" true (stats.Pc.plan_hits >= 3)

(* batched sweep must be byte-identical to one-by-one serving *)
let batch_vs_individual jobs () =
  Snoise.Sweep.set_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Snoise.Sweep.set_jobs 1)
    (fun () ->
      let freq_sets =
        [ "[1e6, 3e6]"; "[2e6]"; "[1e6, 5e6, 9e6]"; "[3e6, 2e6]" ]
      in
      let req id freqs =
        request ~id ~verb:"ac" ~deck
          ~params:(Printf.sprintf {|{"freqs": %s, "nodes": ["out", "in"]}|} freqs)
          ()
      in
      (* batched: all queued before one drain *)
      let batched = Sv.create () in
      List.iteri
        (fun i freqs ->
          match Sv.submit batched ~client:1 (req i freqs) with
          | `Queued -> ()
          | _ -> Alcotest.fail "expected queued")
        freq_sets;
      let batched_replies = List.map snd (Sv.drain batched) in
      (* individual: a fresh service, one request at a time *)
      let indiv = Sv.create () in
      let indiv_replies =
        List.mapi (fun i freqs -> handle1 indiv (req i freqs)) freq_sets
      in
      List.iteri
        (fun i (b, s) ->
          Alcotest.(check string)
            (Printf.sprintf "request %d byte-identical (jobs %d)" i jobs)
            (result_str s) (result_str b);
          match member "batched" (member "served" b) with
          | J.Num n when int_of_float n = List.length freq_sets -> ()
          | other ->
            Alcotest.failf "expected batched=%d, got %s"
              (List.length freq_sets) (J.to_string other))
        (List.combine batched_replies indiv_replies))

let test_batch_errors_all_members () =
  let svc = Sv.create () in
  List.iter
    (fun i ->
      match
        Sv.submit svc ~client:1
          (request ~id:i ~verb:"ac" ~deck:bad_lint_deck
             ~params:{|{"freqs": [1e6], "nodes": ["in"]}|} ())
      with
      | `Queued -> ()
      | _ -> Alcotest.fail "expected queued")
    [ 1; 2 ];
  let replies = List.map snd (Sv.drain svc) in
  Alcotest.(check int) "both answered" 2 (List.length replies);
  List.iter
    (fun r -> Alcotest.(check string) "each refused" "lint-refused" (error_code r))
    replies;
  (* each member keeps its own id *)
  let ids =
    List.map (fun r -> J.to_string (member "id" r)) replies
    |> List.sort String.compare
  in
  Alcotest.(check (list string)) "distinct ids" [ "1"; "2" ] ids

let test_quota_and_backpressure () =
  let config =
    { Sv.max_queue = 4; client_quota = 2; max_decks = 8;
      tran_max_points = 1000 }
  in
  let svc = Sv.create ~config () in
  let submit client id =
    Sv.submit svc ~client (request ~id ~verb:"op" ~deck ())
  in
  (match submit 1 1 with `Queued -> () | _ -> Alcotest.fail "q1");
  (match submit 1 2 with `Queued -> () | _ -> Alcotest.fail "q2");
  (match submit 1 3 with
  | `Replied r ->
    Alcotest.(check string) "third is over quota" "quota-exceeded"
      (error_code r)
  | _ -> Alcotest.fail "expected quota refusal");
  (* another client still gets in *)
  (match submit 2 4 with `Queued -> () | _ -> Alcotest.fail "client 2");
  (match submit 3 5 with `Queued -> () | _ -> Alcotest.fail "client 3");
  (* queue now full (4): anyone is refused busy, with a retry hint *)
  (match submit 4 6 with
  | `Replied r ->
    Alcotest.(check string) "full queue is busy" "busy" (error_code r);
    (match member "retry_after_ms" (member "error" r) with
    | J.Num _ -> ()
    | other -> Alcotest.failf "retry hint: %s" (J.to_string other))
  | _ -> Alcotest.fail "expected busy refusal");
  (* draining frees the queue and resets the per-client counts *)
  let replies = Sv.drain svc in
  Alcotest.(check int) "all queued served" 4 (List.length replies);
  match submit 1 7 with
  | `Queued -> ()
  | _ -> Alcotest.fail "quota resets after drain"

let test_stats_shape () =
  let svc = Sv.create () in
  ignore (handle1 svc (request ~verb:"op" ~deck ()));
  ignore (handle1 svc "garbage");
  let stats = Sv.stats_json svc in
  List.iter
    (fun k -> ignore (member k stats))
    [
      "uptime_s"; "requests"; "responses"; "errors"; "by_verb"; "queue";
      "batch"; "plan_cache"; "timings_ms"; "pool"; "tile_cache";
    ];
  ignore (member "origin" (member "tile_cache" stats));
  match member "plan_misses" (member "plan_cache" stats) with
  | J.Num n when n >= 1.0 -> ()
  | other -> Alcotest.failf "plan_misses: %s" (J.to_string other)

(* ------------------------------------------------------------------ *)
(* a real socket session against a threaded server *)

let test_socket_session () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "snoise-test-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let server = Srv.create ~socket:path () in
  let th = Thread.create (fun () -> Srv.serve server) () in
  Fun.protect
    ~finally:(fun () ->
      Srv.stop server;
      Thread.join th)
    (fun () ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let ic = Unix.in_channel_of_descr fd in
      let send lines =
        let s = String.concat "\n" lines ^ "\n" in
        ignore (Unix.write_substring fd s 0 (String.length s))
      in
      let recv () =
        match In_channel.input_line ic with
        | Some l -> (
          match J.parse l with
          | Ok j -> j
          | Error e -> Alcotest.failf "bad reply %S: %s" l e)
        | None -> Alcotest.fail "server closed early"
      in
      send
        [
          {|{"id": 1, "verb": "ping"}|};
          "not json at all";
          request ~id:2 ~verb:"op" ~deck ();
        ];
      let ping = recv () in
      Alcotest.(check string) "ping" "response" (msg_type ping);
      let bad = recv () in
      Alcotest.(check string)
        "malformed answered, not disconnected" "parse-error" (error_code bad);
      let op = recv () in
      Alcotest.(check string) "op served" "response" (msg_type op);
      (* warm repeat over the same connection: plan cache hit *)
      send [ request ~id:3 ~verb:"op" ~deck () ];
      let warm = recv () in
      Alcotest.(check string)
        "warm repeat hits" {|"hit"|}
        (J.to_string (plan_note warm));
      (* clean shutdown via the protocol *)
      send [ {|{"id": 4, "verb": "shutdown"}|} ];
      let bye = recv () in
      Alcotest.(check string) "shutdown acked" "response" (msg_type bye);
      Unix.close fd;
      Thread.join th;
      Alcotest.(check bool)
        "socket file removed" false (Sys.file_exists path))

let suites =
  [
    ( "server-json",
      [
        Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "special values" `Quick test_json_specials;
        Alcotest.test_case "parse errors" `Quick test_json_errors;
      ] );
    ( "server-protocol",
      [
        Alcotest.test_case "request parsing" `Quick test_protocol_parse;
        Alcotest.test_case "cache keys" `Quick test_cache_key;
      ] );
    ( "server-service",
      [
        Alcotest.test_case "malformed requests" `Quick test_malformed_requests;
        Alcotest.test_case "lint refusal" `Quick test_lint_refused;
        Alcotest.test_case "plan cache lifecycle" `Quick
          test_plan_cache_lifecycle;
        Alcotest.test_case "batch identity (jobs 1)" `Quick
          (batch_vs_individual 1);
        Alcotest.test_case "batch identity (jobs 4)" `Quick
          (batch_vs_individual 4);
        Alcotest.test_case "batch errors reach all members" `Quick
          test_batch_errors_all_members;
        Alcotest.test_case "quota and backpressure" `Quick
          test_quota_and_backpressure;
        Alcotest.test_case "stats shape" `Quick test_stats_shape;
      ] );
    ( "server-socket",
      [ Alcotest.test_case "session" `Quick test_socket_session ] );
  ]
