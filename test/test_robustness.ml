(* Tests for the convergence-rescue ladder, structured diagnostics,
   fault injection and fault-tolerant sweeps. *)

module C = Sn_circuit
module E = C.Element
module W = C.Waveform
module M = C.Mos_model
module Dc = Sn_engine.Dc
module Tran = Sn_engine.Tran
module Diag = Sn_engine.Diag
module Fault = Sn_engine.Fault
module Pool = Sn_engine.Pool
module Mna = Sn_engine.Mna

let check_close tol = Alcotest.(check (float tol))

(* naive substring search, enough for asserting rendered output *)
let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec at i = i + m <= n && (String.sub s i m = affix || at (i + 1)) in
  at 0

let r name n1 n2 ohms = E.Resistor { name; n1; n2; ohms }
let c name n1 n2 farads = E.Capacitor { name; n1; n2; farads }
let vdc name np nn v = E.Vsource { name; np; nn; wave = W.dc v; ac_mag = 0.0 }

let with_fault site spec f =
  Fault.arm site spec;
  Fun.protect ~finally:Fault.disarm f

let divider =
  [ vdc "v1" "in" "0" 10.0; r "r1" "in" "mid" 1000.0;
    r "r2" "mid" "0" 3000.0 ]

let diode_nmos =
  [ vdc "vdd" "vdd" "0" 1.8;
    r "rd" "vdd" "d" 1000.0;
    E.Mosfet { name = "m1"; drain = "d"; gate = "d"; source = "0";
               bulk = "0"; model = M.default_nmos; w = 10e-6; l = 1e-6;
               mult = 1 } ]

(* Two ideal sources fighting over one node: structurally singular,
   and no rescue rung can fix it. *)
let vsource_clash =
  [ vdc "v1" "in" "0" 1.0; vdc "v2" "in" "0" 2.0; r "r1" "in" "0" 1000.0 ]

(* ------------------------------------------------------------------ *)
(* rescue ladder *)

let test_healthy_trace () =
  let s = Dc.solve (C.Netlist.create divider) in
  match Dc.attempts s with
  | [ { Diag.rung = Diag.Plain_newton; converged = true; _ } ] -> ()
  | l ->
    Alcotest.failf "expected one converged plain-newton attempt, got %d"
      (List.length l)

(* A damping clamp far smaller than the supply makes every cold-start
   rung exhaust its budget (the unknowns must crawl 1.8 V in 0.05 V
   clamped updates), while source stepping only ever has to cover one
   0.09 V ramp increment per warm-started sub-step. *)
let tight_options =
  { Dc.default_options with max_iterations = 8; damping = 0.05;
    tolerance = 1e-6 }

let test_source_stepping_rescue () =
  let nl = C.Netlist.create diode_nmos in
  let s = Dc.solve ~options:tight_options nl in
  let attempts = Dc.attempts s in
  let rungs = List.map (fun a -> a.Diag.rung) attempts in
  Alcotest.(check bool)
    "reached source stepping" true
    (List.mem Diag.Source_stepping rungs);
  List.iter
    (fun (a : Diag.attempt) ->
      match a.Diag.rung with
      | Diag.Plain_newton | Diag.Damped_newton | Diag.Gmin_stepping ->
        Alcotest.(check bool)
          (Diag.rung_name a.Diag.rung ^ " failed") false a.Diag.converged
      | Diag.Source_stepping ->
        Alcotest.(check bool) "source stepping converged" true
          a.Diag.converged
      | Diag.Pseudo_transient ->
        Alcotest.fail "pseudo-transient should not have been reached")
    attempts;
  (* the rescued answer agrees with the unconstrained solve *)
  let ref_s = Dc.solve nl in
  check_close 1e-4 "rescued vd" (Dc.voltage ref_s "d") (Dc.voltage s "d")

let test_ladder_exhausted_diagnostic () =
  let nl =
    C.Netlist.create diode_nmos
  in
  (* no rungs beyond a plain attempt that cannot move far enough *)
  let options =
    { tight_options with ladder = [ Diag.Plain_newton ] }
  in
  match Dc.solve ~options nl with
  | _ -> Alcotest.fail "expected Diag.Error"
  | exception Diag.Error (Diag.No_convergence { worst; attempts; _ }) ->
    Alcotest.(check int) "one attempt recorded" 1 (List.length attempts);
    (match worst with
     | Some (Diag.Node _) -> ()
     | _ -> Alcotest.fail "expected a named worst node")
  | exception Diag.Error d ->
    Alcotest.failf "unexpected diagnostic: %s" (Diag.to_string d)

let test_singular_pivot_names_element () =
  match Dc.solve (C.Netlist.create vsource_clash) with
  | _ -> Alcotest.fail "expected Diag.Error"
  | exception Diag.Error (Diag.Singular_pivot { unknown; _ }) -> (
    match unknown with
    | Some (Diag.Branch b) ->
      Alcotest.(check bool)
        (Printf.sprintf "pivot names a clashing source (got %s)" b)
        true
        (b = "v1" || b = "v2")
    | u ->
      Alcotest.failf "expected a branch name, got %s"
        (match u with
         | Some (Diag.Node n) -> "node " ^ n
         | Some (Diag.Branch _) -> assert false
         | None -> "none"))
  | exception Diag.Error d ->
    Alcotest.failf "unexpected diagnostic: %s" (Diag.to_string d)

let test_injected_dc_fault_transparent () =
  let nl = C.Netlist.create diode_nmos in
  let clean = Dc.solve nl in
  with_fault Fault.Dc_attempt Fault.First_in_scope (fun () ->
      let s = Dc.solve nl in
      (* the injected failure of the plain attempt is visible in the
         trace but not in the answer *)
      (match Dc.attempts s with
       | { Diag.rung = Diag.Plain_newton; converged = false; iterations = 0 }
         :: { Diag.rung = Diag.Damped_newton; converged = true; _ } :: _ ->
         ()
       | _ -> Alcotest.fail "expected injected plain failure, damped rescue");
      check_close 1e-6 "same vd" (Dc.voltage clean "d") (Dc.voltage s "d");
      check_close 1e-6 "same vdd" (Dc.voltage clean "vdd")
        (Dc.voltage s "vdd"))

(* ------------------------------------------------------------------ *)
(* transient backoff *)

let rc_charge =
  [ vdc "v1" "in" "0" 1.0; r "r1" "in" "out" 1000.0; c "c1" "out" "0" 1e-6 ]

let rc_options = { Tran.default_options with ic = Tran.Uic [] }

let test_tran_backoff_recovers () =
  let nl = C.Netlist.create rc_charge in
  let tstop = 2e-3 and dt = 1e-4 in
  let clean = Tran.simulate ~options:rc_options ~tstop ~dt nl in
  with_fault Fault.Tran_solve (Fault.Nth 8) (fun () ->
      let d = Tran.simulate ~options:rc_options ~tstop ~dt nl in
      Alcotest.(check bool) "not truncated" true (d.Tran.truncated = None);
      Alcotest.(check int) "full waveform" (Array.length clean.Tran.times)
        (Array.length d.Tran.times);
      let v = Tran.node d "out" and v_ref = Tran.node clean "out" in
      Array.iteri
        (fun k x -> check_close 1e-3 (Printf.sprintf "v(out) at %d" k)
            v_ref.(k) x)
        v)

(* max_newton = 0 fails every solve at every substep size: the run
   must stop early with a truncation diagnostic instead of raising. *)
let unsolvable_options =
  { rc_options with max_newton = 0; linear_fast_path = false;
    max_step_retries = 2 }

let test_tran_truncation () =
  let nl = C.Netlist.create rc_charge in
  let d = Tran.simulate ~options:unsolvable_options ~tstop:1e-3 ~dt:1e-4 nl in
  (match d.Tran.truncated with
   | Some (Diag.Step_truncated { retries; completed_points; _ }) ->
     Alcotest.(check int) "retries exhausted" 2 retries;
     Alcotest.(check int) "only the initial point" 1 completed_points
   | Some other ->
     Alcotest.failf "unexpected diagnostic: %s" (Diag.to_string other)
   | None -> Alcotest.fail "expected a truncated dataset");
  Alcotest.(check int) "times truncated" 1 (Array.length d.Tran.times)

let test_tran_adaptive_truncation () =
  let nl = C.Netlist.create rc_charge in
  let d =
    Tran.simulate_adaptive ~options:unsolvable_options ~tstop:1e-3 ~dt:1e-4 nl
  in
  match d.Tran.truncated with
  | Some (Diag.Step_truncated _) -> ()
  | Some other ->
    Alcotest.failf "unexpected diagnostic: %s" (Diag.to_string other)
  | None -> Alcotest.fail "expected a truncated dataset"

(* ------------------------------------------------------------------ *)
(* fault-tolerant sweeps *)

(* One injected singular factorization with the rescue ladder disabled:
   exactly one point fails in the pool, the sequential retry (fault
   already consumed) succeeds, and every point comes back [Ok]. *)
let sweep_retry_rescues ~jobs () =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let calls = Atomic.make 0 in
  let options = { Dc.default_options with ladder = [ Diag.Plain_newton ] } in
  let solve ohms =
    Atomic.incr calls;
    let nl =
      C.Netlist.create
        [ vdc "v1" "in" "0" 10.0; r "r1" "in" "mid" 1000.0;
          r "r2" "mid" "0" ohms ]
    in
    Dc.voltage (Dc.solve ~options nl) "mid"
  in
  let points = Array.init 8 (fun k -> 1000.0 *. float_of_int (k + 1)) in
  with_fault Fault.Factor (Fault.Nth 5) (fun () ->
      let results = Snoise.Sweep.map_array_result ~pool solve points in
      Array.iteri
        (fun k res ->
          match res with
          | Ok v ->
            let ohms = points.(k) in
            check_close 1e-6
              (Printf.sprintf "point %d" k)
              (10.0 *. ohms /. (1000.0 +. ohms))
              v
          | Error d ->
            Alcotest.failf "point %d not rescued: %s" k (Diag.to_string d))
        results;
      Alcotest.(check int) "exactly one retry" 9 (Atomic.get calls))

let test_sweep_retry_width1 () = sweep_retry_rescues ~jobs:1 ()
let test_sweep_retry_width4 () = sweep_retry_rescues ~jobs:4 ()

(* The sparse frequency-domain path carries the same typed diagnostics
   as the dense one: a singular complex pivot maps back to the named
   unknown (vsource_clash is linear, so any bias vector compiles the
   same plan; crossover 0 forces the Gilbert-Peierls kernel). *)
let test_ac_sparse_singular_names_branch () =
  let module Ac_plan = Sn_engine.Ac_plan in
  let module Sp = Sn_engine.Stamp_plan in
  let nl = C.Netlist.create vsource_clash in
  let mna = Mna.build nl in
  let plan = Sp.build mna in
  let acp = Ac_plan.compile ~crossover:0 plan (Array.make (Mna.dim mna) 0.0) in
  match Ac_plan.ensure_master acp ~freq:1.0e6 with
  | () -> Alcotest.fail "expected a singular pivot"
  | exception
      Diag.Error
        (Diag.Singular_pivot { unknown = Some (Diag.Branch b); loc; _ }) ->
    Alcotest.(check bool) "named source" true (b = "v1" || b = "v2");
    Alcotest.(check string) "analysis" "ac" loc.Diag.analysis;
    Alcotest.(check (option (float 0.0))) "frequency" (Some 1.0e6)
      loc.Diag.freq
  | exception Diag.Error d ->
    Alcotest.failf "expected a named singular pivot, got %s" (Diag.to_string d)

(* The injected-fault site covers the new frequency-domain factor: with
   the operating point precomputed (so the DC assembler does not consume
   the fault), the first AC factorization reports the sentinel pivot. *)
let test_injected_ac_fault_diagnostic () =
  let nl =
    C.Netlist.create
      [ E.Vsource { name = "v1"; np = "in"; nn = "0"; wave = W.dc 10.0;
                    ac_mag = 1.0 };
        r "r1" "in" "mid" 1000.0; r "r2" "mid" "0" 3000.0 ]
  in
  let dc = Dc.solve nl in
  with_fault Fault.Factor (Fault.Nth 1) (fun () ->
      match Sn_engine.Ac.solve ~dc nl ~freq:1.0e6 with
      | _ -> Alcotest.fail "expected an injected fault"
      | exception Diag.Error (Diag.Singular_pivot { pivot; _ } as d) ->
        Alcotest.(check int) "sentinel pivot" (-1) pivot;
        Alcotest.(check bool) "renders as injected" true
          (contains (Diag.to_string d) "injected fault")
      | exception Diag.Error d ->
        Alcotest.failf "expected a singular pivot, got %s" (Diag.to_string d))

(* Acceptance: a 16-point sweep with one permanently bad point returns
   15 [Ok] and one [Error] carrying a named unknown. *)
let test_sweep_one_permanent_failure () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let solve k =
    let nl =
      if k = 13 then C.Netlist.create vsource_clash
      else C.Netlist.create divider
    in
    Dc.voltage (Dc.solve nl) "mid"
  in
  let results =
    Snoise.Sweep.map_points_result ~pool solve (List.init 16 Fun.id)
  in
  Alcotest.(check int) "16 results" 16 (List.length results);
  List.iteri
    (fun k res ->
      match (k, res) with
      | 13, Error (Diag.Singular_pivot { unknown = Some (Diag.Branch b); _ })
        ->
        Alcotest.(check bool) "named source" true (b = "v1" || b = "v2")
      | 13, Error d ->
        Alcotest.failf "point 13: expected a named singular pivot, got %s"
          (Diag.to_string d)
      | 13, Ok _ -> Alcotest.fail "point 13 should fail"
      | _, Ok v -> check_close 1e-6 (Printf.sprintf "point %d" k) 7.5 v
      | _, Error d ->
        Alcotest.failf "point %d failed: %s" k (Diag.to_string d))
    results

let test_grid_result_keeps_coordinates () =
  let f a b =
    if a = 2 && b = 20 then
      raise
        (Diag.Error
           (Diag.Bad_input { loc = Diag.loc "test"; what = "poisoned cell" }))
    else a + b
  in
  let cells = Snoise.Sweep.grid_result f [ 1; 2 ] [ 10; 20 ] in
  Alcotest.(check int) "4 cells" 4 (List.length cells);
  List.iter
    (fun (a, b, res) ->
      match res with
      | Ok v -> Alcotest.(check int) "sum" (a + b) v
      | Error (Diag.Bad_input _) ->
        Alcotest.(check (pair int int)) "failed cell" (2, 20) (a, b)
      | Error d -> Alcotest.failf "unexpected: %s" (Diag.to_string d))
    cells

let test_pool_map_array_result () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let f k = if k = 3 then failwith "boom" else k * k in
  let results = Pool.map_array_result pool f (Array.init 8 Fun.id) in
  Array.iteri
    (fun k res ->
      match res with
      | Ok v -> Alcotest.(check int) "square" (k * k) v
      | Error (Failure msg) ->
        Alcotest.(check int) "only point 3 fails" 3 k;
        Alcotest.(check string) "message" "boom" msg
      | Error e -> raise e)
    results;
  Alcotest.(check int) "one failure counted" 1 (Pool.stats pool).Pool.tasks_failed

(* ------------------------------------------------------------------ *)
(* lint gate, naming, rendering *)

let test_lint_gate_blocks_errors () =
  let bad = C.Netlist.create vsource_clash in
  (match Snoise.Flow.lint_gate bad with
   | () -> Alcotest.fail "expected a lint refusal"
   | exception Diag.Error (Diag.Bad_input { what; _ }) ->
     Alcotest.(check bool) "names the check" true
       (contains what "vsource-loop"));
  (* the escape hatch really is a no-op *)
  Snoise.Flow.lint_gate ~enabled:false bad;
  Snoise.Flow.lint_gate (C.Netlist.create divider)

let test_unknown_node_candidates () =
  let s = Dc.solve (C.Netlist.create divider) in
  match Dc.voltage s "mdi" with
  | _ -> Alcotest.fail "expected Unknown_node"
  | exception Mna.Unknown_node { node; candidates } ->
    Alcotest.(check string) "offending name" "mdi" node;
    Alcotest.(check bool) "suggests mid" true (List.mem "mid" candidates)

let test_diag_json () =
  let j =
    Diag.to_json
      (Diag.Singular_pivot
         { loc = Diag.loc "dc"; pivot = 3;
           unknown = Some (Diag.Branch "v1") })
  in
  Alcotest.(check bool) "kind" true (contains j "\"kind\": \"singular-pivot\"");
  Alcotest.(check bool) "branch" true (contains j "\"branch\": \"v1\"");
  let j2 =
    Diag.to_json
      (Diag.No_convergence
         { loc = Diag.loc "dc"; iterations = 12; residual = 0.5;
           worst = Some (Diag.Node "out");
           attempts =
             [ { Diag.rung = Diag.Plain_newton; iterations = 12;
                 converged = false } ] })
  in
  Alcotest.(check bool) "kind 2" true
    (contains j2 "\"kind\": \"no-convergence\"");
  Alcotest.(check bool) "rung name" true (contains j2 "\"plain-newton\"")

let suites =
  [
    ( "robustness.rescue",
      [
        Alcotest.test_case "healthy solve: one plain attempt" `Quick
          test_healthy_trace;
        Alcotest.test_case "source stepping rescues tight clamp" `Quick
          test_source_stepping_rescue;
        Alcotest.test_case "exhausted ladder names worst node" `Quick
          test_ladder_exhausted_diagnostic;
        Alcotest.test_case "singular pivot names the element" `Quick
          test_singular_pivot_names_element;
        Alcotest.test_case "injected DC fault is transparent" `Quick
          test_injected_dc_fault_transparent;
      ] );
    ( "robustness.tran",
      [
        Alcotest.test_case "step backoff recovers injected fault" `Quick
          test_tran_backoff_recovers;
        Alcotest.test_case "fixed-step truncation diagnostic" `Quick
          test_tran_truncation;
        Alcotest.test_case "adaptive truncation diagnostic" `Quick
          test_tran_adaptive_truncation;
      ] );
    ( "robustness.ac",
      [
        Alcotest.test_case "sparse singular pivot names the source" `Quick
          test_ac_sparse_singular_names_branch;
        Alcotest.test_case "injected AC fault is transparent" `Quick
          test_injected_ac_fault_diagnostic;
      ] );
    ( "robustness.sweep",
      [
        Alcotest.test_case "retry rescues injected fault (jobs=1)" `Quick
          test_sweep_retry_width1;
        Alcotest.test_case "retry rescues injected fault (jobs=4)" `Quick
          test_sweep_retry_width4;
        Alcotest.test_case "15 Ok + 1 named Error" `Quick
          test_sweep_one_permanent_failure;
        Alcotest.test_case "grid keeps failed coordinates" `Quick
          test_grid_result_keeps_coordinates;
        Alcotest.test_case "pool map_array_result" `Quick
          test_pool_map_array_result;
      ] );
    ( "robustness.diag",
      [
        Alcotest.test_case "lint gate refuses bad netlist" `Quick
          test_lint_gate_blocks_errors;
        Alcotest.test_case "unknown node suggests candidates" `Quick
          test_unknown_node_candidates;
        Alcotest.test_case "stable JSON rendering" `Quick test_diag_json;
      ] );
  ]
